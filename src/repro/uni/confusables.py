"""Homograph/confusable detection (UTS #39 skeleton, abridged).

Implements the skeleton transform the paper's browser models and the
Table 3 variant detector need: a mapping from visually confusable
characters (Cyrillic/Greek homographs, fullwidth forms, look-alike
punctuation) to a Latin prototype, plus NFKD-based fallback so that
composed/fullwidth forms fold automatically.
"""

from __future__ import annotations

import unicodedata

#: Visually confusable -> Latin prototype.  Abridged from UTS #39
#: confusablesSummary to the scripts the paper's examples exercise.
CONFUSABLE_MAP: dict[str, str] = {
    # Cyrillic lookalikes.
    "а": "a", "е": "e", "о": "o", "р": "p", "с": "c", "х": "x", "у": "y",
    "і": "i", "ј": "j", "ѕ": "s", "һ": "h", "ԁ": "d", "ԛ": "q", "ԝ": "w",
    "в": "b", "м": "m", "н": "h", "т": "t", "к": "k", "г": "r",
    "А": "A", "В": "B", "Е": "E", "К": "K", "М": "M", "Н": "H", "О": "O",
    "Р": "P", "С": "C", "Т": "T", "Х": "X", "У": "Y", "Ѕ": "S", "І": "I",
    "Ј": "J", "Ԛ": "Q", "Ԝ": "W",
    # Greek lookalikes.
    "α": "a", "ο": "o", "ν": "v", "ρ": "p", "τ": "t", "υ": "u", "κ": "k",
    "ι": "i", "η": "n", "Α": "A", "Β": "B", "Ε": "E", "Ζ": "Z", "Η": "H",
    "Ι": "I", "Κ": "K", "Μ": "M", "Ν": "N", "Ο": "O", "Ρ": "P", "Τ": "T",
    "Υ": "Y", "Χ": "X",
    # Punctuation and symbol lookalikes.
    "‚": ",", "٫": ",", "；": ";",
    "：": ":", "։": ":", "׃": ":",
    "‐": "-", "‑": "-", "‒": "-", "–": "-", "—": "-", "−": "-",
    "ー": "-", "﹘": "-",
    "․": ".", "。": ".", "٠": ".",
    "′": "'", "‵": "'", "ʹ": "'", "ʻ": "'", "’": "'",
    "″": '"', "“": '"', "”": '"',
    "⁄": "/", "∕": "/",
    "﹨": "\\", "∖": "\\",
    # Paper Table 3 / F.1 examples.
    "™": "TM", "®": "R", "©": "C",
    "ℓ": "l", "ⅼ": "l", "Ⅰ": "I", "ⅰ": "i",
    "⍺": "a", "ꓐ": "B", "ꓑ": "P", "ꓒ": "p",
    # Greek question mark (U+037E) renders like a semicolon — the paper's
    # G1.2 substitution example.
    ";": ";",
}

#: Invisible characters that survive rendering without a visual trace.
INVISIBLE_CHARACTERS = frozenset(
    {
        0x00AD,  # SOFT HYPHEN
        0x034F,  # COMBINING GRAPHEME JOINER
        0x115F, 0x1160,  # HANGUL FILLERS
        0x17B4, 0x17B5,  # KHMER INHERENT VOWELS
        0x180E,  # MONGOLIAN VOWEL SEPARATOR
        *range(0x200B, 0x2010),  # ZWSP, ZWNJ, ZWJ, LRM, RLM
        *range(0x202A, 0x202F),  # bidi embedding controls incl. RLO/PDF
        *range(0x2060, 0x2065),  # WORD JOINER, invisible operators
        *range(0x2066, 0x206A),  # bidi isolates
        *range(0x206A, 0x2070),  # deprecated format controls
        0xFEFF,  # ZERO WIDTH NO-BREAK SPACE / BOM
        0xFFA0,  # HALFWIDTH HANGUL FILLER
    }
)

#: Bidirectional control characters usable for display-order spoofing.
BIDI_CONTROLS = frozenset(
    {0x061C, 0x200E, 0x200F, *range(0x202A, 0x202F), *range(0x2066, 0x206A)}
)


def has_invisible(text: str) -> bool:
    """Whether ``text`` contains any invisible/zero-width character."""
    return any(ord(ch) in INVISIBLE_CHARACTERS for ch in text)


def has_bidi_control(text: str) -> bool:
    """Whether ``text`` contains bidirectional control characters."""
    return any(ord(ch) in BIDI_CONTROLS for ch in text)


def skeleton(text: str) -> str:
    """Map ``text`` to its confusable skeleton.

    Strips invisible characters, folds compatibility forms (NFKD),
    applies the confusable map, and lowercases — two strings with equal
    skeletons are considered visually confusable.
    """
    stripped = "".join(ch for ch in text if ord(ch) not in INVISIBLE_CHARACTERS)
    folded = unicodedata.normalize("NFKD", stripped)
    # Remove combining marks produced by decomposition (é -> e).
    base = "".join(ch for ch in folded if not unicodedata.combining(ch))
    mapped = "".join(CONFUSABLE_MAP.get(ch, ch) for ch in base)
    return mapped.casefold()


def is_confusable(a: str, b: str) -> bool:
    """Whether two distinct strings are visually confusable."""
    return a != b and skeleton(a) == skeleton(b)


def mixed_script_confusable(text: str) -> bool:
    """Heuristic: mixed Latin plus confusable Cyrillic/Greek letters.

    Browsers use script-mixing checks to catch homograph labels; this is
    the check the paper finds browsers *fail* to apply inside
    certificate-viewer components.
    """
    has_latin = any("LATIN" in unicodedata.name(ch, "") for ch in text if ch.isalpha())
    has_confusable_foreign = any(
        ch in CONFUSABLE_MAP and "LATIN" not in unicodedata.name(ch, "")
        for ch in text
    )
    return has_latin and has_confusable_foreign
