"""UTS #46-style preprocessing (compatibility mapping before IDNA).

Browsers and registrars do not feed raw user input to IDNA2008: they
first apply the Unicode IDNA Compatibility Processing — lowercase
mapping, NFKC compatibility folding (fullwidth forms, ligatures),
removal of ignorable code points — and only then validate.  This module
implements the mapping step the paper's browser/monitor behaviours sit
on top of.
"""

from __future__ import annotations

import unicodedata

from .errors import IDNAError
from .idna import ulabel_violations

#: Code points UTS #46 maps to nothing (deleted before validation).
_IGNORED = frozenset(
    {
        0x00AD,  # SOFT HYPHEN
        0x034F,  # COMBINING GRAPHEME JOINER
        0x180B, 0x180C, 0x180D,  # Mongolian variation selectors
        0x200B,  # ZERO WIDTH SPACE
        0x2060,  # WORD JOINER
        0xFEFF,  # ZWNBSP
        *range(0xFE00, 0xFE10),  # variation selectors
    }
)

#: Code points that are *disallowed* even after mapping (never valid in
#: a domain): a practical subset mirroring IdnaMappingTable DISALLOWED.
_DISALLOWED_AFTER_MAPPING = frozenset(
    {
        0x0020,  # SPACE
        0x2028, 0x2029,  # line/paragraph separators
        *range(0x0000, 0x0020),
        0x007F,
    }
)


def uts46_remap(text: str, transitional: bool = False) -> str:
    """Apply the UTS #46 mapping step to a whole domain string.

    * deletes ignored code points,
    * lowercases and NFKC-folds everything else,
    * maps ideographic full stops to '.',
    * in *transitional* mode additionally maps the deviation characters
      (ß→ss, ς→σ, ZWJ/ZWNJ→deleted) the way IDNA2003 did.
    """
    out: list[str] = []
    for ch in text:
        cp = ord(ch)
        if cp in _IGNORED:
            continue
        if ch in "。．｡":  # ideographic/fullwidth/halfwidth full stops
            out.append(".")
            continue
        if transitional:
            if ch == "ß":
                out.append("ss")
                continue
            if ch == "ς":
                out.append("σ")
                continue
            if cp in (0x200C, 0x200D):  # ZWNJ / ZWJ deleted
                continue
        out.append(ch)
    # lower() (not casefold()) keeps the deviation characters ß and ς
    # intact in nontransitional processing, per UTS #46.
    mapped = unicodedata.normalize("NFKC", "".join(out)).lower()
    return unicodedata.normalize("NFKC", mapped)


def uts46_violations(domain: str) -> list[str]:
    """Problems that survive the mapping step (per-label IDNA checks)."""
    mapped = uts46_remap(domain)
    problems: list[str] = []
    for ch in mapped:
        if ord(ch) in _DISALLOWED_AFTER_MAPPING:
            problems.append(f"disallowed code point U+{ord(ch):04X} after mapping")
    for label in mapped.split("."):
        if not label:
            continue
        if all(ord(ch) < 0x80 for ch in label):
            continue  # plain LDH labels validated elsewhere
        for problem in ulabel_violations(label):
            problems.append(f"label {label!r}: {problem}")
    return problems


def to_ascii(domain: str, transitional: bool = False) -> str:
    """UTS #46 ToASCII: map, validate, and Punycode-encode each label."""
    from .idna import ulabel_to_alabel

    mapped = uts46_remap(domain, transitional=transitional)
    problems = uts46_violations(domain)
    if problems:
        raise IDNAError(f"UTS46 processing failed: {problems[0]}")
    labels = []
    for label in mapped.split("."):
        if label and any(ord(ch) >= 0x80 for ch in label):
            labels.append(ulabel_to_alabel(label, validate=False))
        else:
            labels.append(label)
    return ".".join(labels)
