"""Subject-value variant strategies (paper Table 3).

CAs accept Subject strings that are identity-equivalent but textually
different, enabling detection evasion.  This module both *classifies* a
pair of strings into the paper's six strategies and *generates* variants
of a given string for the traffic-obfuscation experiments.
"""

from __future__ import annotations

import enum
import unicodedata

from .confusables import CONFUSABLE_MAP, INVISIBLE_CHARACTERS, skeleton
from .normalization import canonical_whitespace, has_alternate_whitespace


class VariantStrategy(enum.Enum):
    """The six variant strategies of Table 3."""

    CASE_CONVERSION = "Character case conversion"
    ABBREVIATION = "Abbreviation variations"
    NON_PRINTABLE_ADDITION = "Addition of non-printable characters"
    WHITESPACE_VARIATION = "Use of different whitespace characters"
    RESEMBLING_SUBSTITUTION = "Substitution of resembling characters"
    ILLEGAL_REPLACEMENT = "Replacement of illegal characters"


#: Corporate-suffix equivalence classes used by the abbreviation detector.
_ABBREVIATION_CLASSES: list[frozenset[str]] = [
    frozenset({"ltd", "ltd.", "limited", "ooo", "ооо", "000"}),
    frozenset({"s.r.o.", "sro", "a.s.", "as", "s.a.", "sa", "s.a", "sp. z o.o.", "sp z oo"}),
    frozenset({"gmbh", "gesellschaft mit beschränkter haftung"}),
    frozenset({"inc", "inc.", "incorporated", "corp", "corp.", "corporation"}),
    frozenset({"co", "co.", "company"}),
    frozenset({"llc", "l.l.c."}),
]

_SUFFIX_TOKENS = frozenset(token for cls in _ABBREVIATION_CLASSES for token in cls)


def _printable_core(text: str) -> str:
    """Drop control/format/invisible characters entirely."""
    return "".join(
        ch
        for ch in text
        if ord(ch) not in INVISIBLE_CHARACTERS
        and not unicodedata.category(ch).startswith("C")
    )


#: Decoration symbols whose presence/order does not change the perceived
#: identity (the paper's "Vegas.XXX®™" vs "Vegas.XXX™®" example).
_DECORATION_MARKS = frozenset("™®©")


def _decoration_free_skeleton(text: str) -> str:
    stripped = "".join(ch for ch in text if ch not in _DECORATION_MARKS)
    return skeleton(canonical_whitespace(stripped))


def _abbrev_normalize(text: str) -> str:
    tokens = [t for t in canonical_whitespace(text).casefold().replace(",", " ").split() if t]
    kept = [t for t in tokens if t not in _SUFFIX_TOKENS]
    return " ".join(kept)


def classify_variant_pair(a: str, b: str) -> VariantStrategy | None:
    """Classify how two Subject values relate, per Table 3.

    Returns ``None`` when the strings are identical or unrelated.
    Strategies are tested from the most specific to the most general.
    """
    if a == b:
        return None
    for damaged, intact in ((a, b), (b, a)):
        if "�" in damaged and "�" not in intact:
            stripped = damaged.replace("�", "")
            if all(ch in intact for ch in stripped if ch.isalnum()):
                return VariantStrategy.ILLEGAL_REPLACEMENT
    core_a, core_b = _printable_core(a), _printable_core(b)
    if core_a != a or core_b != b:
        if canonical_whitespace(core_a).casefold() == canonical_whitespace(core_b).casefold():
            return VariantStrategy.NON_PRINTABLE_ADDITION
    if has_alternate_whitespace(a) or has_alternate_whitespace(b):
        if canonical_whitespace(a).casefold() == canonical_whitespace(b).casefold():
            return VariantStrategy.WHITESPACE_VARIATION
    if a.casefold() == b.casefold():
        return VariantStrategy.CASE_CONVERSION
    if canonical_whitespace(a).casefold() == canonical_whitespace(b).casefold():
        return VariantStrategy.WHITESPACE_VARIATION
    if skeleton(a) == skeleton(b):
        return VariantStrategy.RESEMBLING_SUBSTITUTION
    if _abbrev_normalize(a) and _abbrev_normalize(a) == _abbrev_normalize(b):
        return VariantStrategy.ABBREVIATION
    if _decoration_free_skeleton(a) == _decoration_free_skeleton(b):
        return VariantStrategy.RESEMBLING_SUBSTITUTION
    return None


def are_identity_equivalent(a: str, b: str) -> bool:
    """Whether two Subject values plausibly denote the same entity."""
    return a == b or classify_variant_pair(a, b) is not None


# ---------------------------------------------------------------------------
# Variant generation (used by the Section 6.2 obfuscation experiments)
# ---------------------------------------------------------------------------

_REVERSE_CONFUSABLES: dict[str, str] = {}
for _src, _dst in CONFUSABLE_MAP.items():
    if len(_dst) == 1 and _dst.isalpha() and _dst.islower() and _dst not in _REVERSE_CONFUSABLES:
        _REVERSE_CONFUSABLES[_dst] = _src


def generate_variants(subject: str) -> dict[VariantStrategy, str]:
    """Produce one variant of ``subject`` per applicable strategy."""
    variants: dict[VariantStrategy, str] = {}
    swapped = subject.swapcase()
    if swapped != subject:
        variants[VariantStrategy.CASE_CONVERSION] = swapped
    variants[VariantStrategy.NON_PRINTABLE_ADDITION] = subject + "\u200b"
    if " " in subject:
        variants[VariantStrategy.WHITESPACE_VARIATION] = subject.replace(" ", "\u00a0", 1)
    for ch in subject:
        if ch in _REVERSE_CONFUSABLES:
            variants[VariantStrategy.RESEMBLING_SUBSTITUTION] = subject.replace(
                ch, _REVERSE_CONFUSABLES[ch], 1
            )
            break
    lowered = subject.casefold()
    for cls in _ABBREVIATION_CLASSES:
        for token in cls:
            if lowered.endswith(token):
                replacement = next(iter(cls - {token}), None)
                if replacement:
                    variants[VariantStrategy.ABBREVIATION] = (
                        subject[: len(subject) - len(token)] + replacement
                    )
                break
    return variants
