"""Unicode block registry and per-block sampling.

The paper's test-certificate generator samples "one character from each
of 323 standard Unicode blocks (excluding surrogates)".  This module
embeds a curated block registry (the well-known Blocks.txt ranges for
the BMP and the major supplementary blocks) and exposes the same
sampling operation.  The registry is a substitution for the full
Blocks.txt data file (unavailable offline); its exact block count is
exposed as ``len(BLOCKS)`` and every sampled character is verified to be
*assigned* via :mod:`unicodedata`.
"""

from __future__ import annotations

import bisect
import unicodedata
from dataclasses import dataclass

_BLOCK_TABLE = """
0000 007F Basic Latin
0080 00FF Latin-1 Supplement
0100 017F Latin Extended-A
0180 024F Latin Extended-B
0250 02AF IPA Extensions
02B0 02FF Spacing Modifier Letters
0300 036F Combining Diacritical Marks
0370 03FF Greek and Coptic
0400 04FF Cyrillic
0500 052F Cyrillic Supplement
0530 058F Armenian
0590 05FF Hebrew
0600 06FF Arabic
0700 074F Syriac
0750 077F Arabic Supplement
0780 07BF Thaana
07C0 07FF NKo
0800 083F Samaritan
0840 085F Mandaic
0860 086F Syriac Supplement
08A0 08FF Arabic Extended-A
0900 097F Devanagari
0980 09FF Bengali
0A00 0A7F Gurmukhi
0A80 0AFF Gujarati
0B00 0B7F Oriya
0B80 0BFF Tamil
0C00 0C7F Telugu
0C80 0CFF Kannada
0D00 0D7F Malayalam
0D80 0DFF Sinhala
0E00 0E7F Thai
0E80 0EFF Lao
0F00 0FFF Tibetan
1000 109F Myanmar
10A0 10FF Georgian
1100 11FF Hangul Jamo
1200 137F Ethiopic
1380 139F Ethiopic Supplement
13A0 13FF Cherokee
1400 167F Unified Canadian Aboriginal Syllabics
1680 169F Ogham
16A0 16FF Runic
1700 171F Tagalog
1720 173F Hanunoo
1740 175F Buhid
1760 177F Tagbanwa
1780 17FF Khmer
1800 18AF Mongolian
18B0 18FF Unified Canadian Aboriginal Syllabics Extended
1900 194F Limbu
1950 197F Tai Le
1980 19DF New Tai Lue
19E0 19FF Khmer Symbols
1A00 1A1F Buginese
1A20 1AAF Tai Tham
1AB0 1AFF Combining Diacritical Marks Extended
1B00 1B7F Balinese
1B80 1BBF Sundanese
1BC0 1BFF Batak
1C00 1C4F Lepcha
1C50 1C7F Ol Chiki
1C80 1C8F Cyrillic Extended-C
1C90 1CBF Georgian Extended
1CC0 1CCF Sundanese Supplement
1CD0 1CFF Vedic Extensions
1D00 1D7F Phonetic Extensions
1D80 1DBF Phonetic Extensions Supplement
1DC0 1DFF Combining Diacritical Marks Supplement
1E00 1EFF Latin Extended Additional
1F00 1FFF Greek Extended
2000 206F General Punctuation
2070 209F Superscripts and Subscripts
20A0 20CF Currency Symbols
20D0 20FF Combining Diacritical Marks for Symbols
2100 214F Letterlike Symbols
2150 218F Number Forms
2190 21FF Arrows
2200 22FF Mathematical Operators
2300 23FF Miscellaneous Technical
2400 243F Control Pictures
2440 245F Optical Character Recognition
2460 24FF Enclosed Alphanumerics
2500 257F Box Drawing
2580 259F Block Elements
25A0 25FF Geometric Shapes
2600 26FF Miscellaneous Symbols
2700 27BF Dingbats
27C0 27EF Miscellaneous Mathematical Symbols-A
27F0 27FF Supplemental Arrows-A
2800 28FF Braille Patterns
2900 297F Supplemental Arrows-B
2980 29FF Miscellaneous Mathematical Symbols-B
2A00 2AFF Supplemental Mathematical Operators
2B00 2BFF Miscellaneous Symbols and Arrows
2C00 2C5F Glagolitic
2C60 2C7F Latin Extended-C
2C80 2CFF Coptic
2D00 2D2F Georgian Supplement
2D30 2D7F Tifinagh
2D80 2DDF Ethiopic Extended
2DE0 2DFF Cyrillic Extended-A
2E00 2E7F Supplemental Punctuation
2E80 2EFF CJK Radicals Supplement
2F00 2FDF Kangxi Radicals
2FF0 2FFF Ideographic Description Characters
3000 303F CJK Symbols and Punctuation
3040 309F Hiragana
30A0 30FF Katakana
3100 312F Bopomofo
3130 318F Hangul Compatibility Jamo
3190 319F Kanbun
31A0 31BF Bopomofo Extended
31C0 31EF CJK Strokes
31F0 31FF Katakana Phonetic Extensions
3200 32FF Enclosed CJK Letters and Months
3300 33FF CJK Compatibility
3400 4DBF CJK Unified Ideographs Extension A
4DC0 4DFF Yijing Hexagram Symbols
4E00 9FFF CJK Unified Ideographs
A000 A48F Yi Syllables
A490 A4CF Yi Radicals
A4D0 A4FF Lisu
A500 A63F Vai
A640 A69F Cyrillic Extended-B
A6A0 A6FF Bamum
A700 A71F Modifier Tone Letters
A720 A7FF Latin Extended-D
A800 A82F Syloti Nagri
A830 A83F Common Indic Number Forms
A840 A87F Phags-pa
A880 A8DF Saurashtra
A8E0 A8FF Devanagari Extended
A900 A92F Kayah Li
A930 A95F Rejang
A960 A97F Hangul Jamo Extended-A
A980 A9DF Javanese
A9E0 A9FF Myanmar Extended-B
AA00 AA5F Cham
AA60 AA7F Myanmar Extended-A
AA80 AADF Tai Viet
AAE0 AAFF Meetei Mayek Extensions
AB00 AB2F Ethiopic Extended-A
AB30 AB6F Latin Extended-E
AB70 ABBF Cherokee Supplement
ABC0 ABFF Meetei Mayek
AC00 D7AF Hangul Syllables
D7B0 D7FF Hangul Jamo Extended-B
D800 DB7F High Surrogates
DB80 DBFF High Private Use Surrogates
DC00 DFFF Low Surrogates
E000 F8FF Private Use Area
F900 FAFF CJK Compatibility Ideographs
FB00 FB4F Alphabetic Presentation Forms
FB50 FDFF Arabic Presentation Forms-A
FE00 FE0F Variation Selectors
FE10 FE1F Vertical Forms
FE20 FE2F Combining Half Marks
FE30 FE4F CJK Compatibility Forms
FE50 FE6F Small Form Variants
FE70 FEFF Arabic Presentation Forms-B
FF00 FFEF Halfwidth and Fullwidth Forms
FFF0 FFFF Specials
10000 1007F Linear B Syllabary
10080 100FF Linear B Ideograms
10100 1013F Aegean Numbers
10140 1018F Ancient Greek Numbers
10190 101CF Ancient Symbols
101D0 101FF Phaistos Disc
10280 1029F Lycian
102A0 102DF Carian
102E0 102FF Coptic Epact Numbers
10300 1032F Old Italic
10330 1034F Gothic
10350 1037F Old Permic
10380 1039F Ugaritic
103A0 103DF Old Persian
10400 1044F Deseret
10450 1047F Shavian
10480 104AF Osmanya
104B0 104FF Osage
10500 1052F Elbasan
10530 1056F Caucasian Albanian
10600 1077F Linear A
10800 1083F Cypriot Syllabary
10840 1085F Imperial Aramaic
10860 1087F Palmyrene
10880 108AF Nabataean
108E0 108FF Hatran
10900 1091F Phoenician
10920 1093F Lydian
10980 1099F Meroitic Hieroglyphs
109A0 109FF Meroitic Cursive
10A00 10A5F Kharoshthi
10A60 10A7F Old South Arabian
10A80 10A9F Old North Arabian
10AC0 10AFF Manichaean
10B00 10B3F Avestan
10B40 10B5F Inscriptional Parthian
10B60 10B7F Inscriptional Pahlavi
10B80 10BAF Psalter Pahlavi
10C00 10C4F Old Turkic
10C80 10CFF Old Hungarian
10D00 10D3F Hanifi Rohingya
10E60 10E7F Rumi Numeral Symbols
10E80 10EBF Yezidi
10F00 10F2F Old Sogdian
10F30 10F6F Sogdian
10FB0 10FDF Chorasmian
10FE0 10FFF Elymaic
11000 1107F Brahmi
11080 110CF Kaithi
110D0 110FF Sora Sompeng
11100 1114F Chakma
11150 1117F Mahajani
11180 111DF Sharada
111E0 111FF Sinhala Archaic Numbers
11200 1124F Khojki
11280 112AF Multani
112B0 112FF Khudawadi
11300 1137F Grantha
11400 1147F Newa
11480 114DF Tirhuta
11580 115FF Siddham
11600 1165F Modi
11660 1167F Mongolian Supplement
11680 116CF Takri
11700 1174F Ahom
11800 1184F Dogra
118A0 118FF Warang Citi
11900 1195F Dives Akuru
119A0 119FF Nandinagari
11A00 11A4F Zanabazar Square
11A50 11AAF Soyombo
11AC0 11AFF Pau Cin Hau
11C00 11C6F Bhaiksuki
11C70 11CBF Marchen
11D00 11D5F Masaram Gondi
11D60 11DAF Gunjala Gondi
11EE0 11EFF Makasar
11FB0 11FBF Lisu Supplement
11FC0 11FFF Tamil Supplement
12000 123FF Cuneiform
12400 1247F Cuneiform Numbers and Punctuation
12480 1254F Early Dynastic Cuneiform
13000 1342F Egyptian Hieroglyphs
13430 1343F Egyptian Hieroglyph Format Controls
14400 1467F Anatolian Hieroglyphs
16800 16A3F Bamum Supplement
16A40 16A6F Mro
16AD0 16AFF Bassa Vah
16B00 16B8F Pahawh Hmong
16E40 16E9F Medefaidrin
16F00 16F9F Miao
16FE0 16FFF Ideographic Symbols and Punctuation
17000 187FF Tangut
18800 18AFF Tangut Components
18B00 18CFF Khitan Small Script
18D00 18D8F Tangut Supplement
1B000 1B0FF Kana Supplement
1B100 1B12F Kana Extended-A
1B130 1B16F Small Kana Extension
1B170 1B2FF Nushu
1BC00 1BC9F Duployan
1BCA0 1BCAF Shorthand Format Controls
1D000 1D0FF Byzantine Musical Symbols
1D100 1D1FF Musical Symbols
1D200 1D24F Ancient Greek Musical Notation
1D2E0 1D2FF Mayan Numerals
1D300 1D35F Tai Xuan Jing Symbols
1D360 1D37F Counting Rod Numerals
1D400 1D7FF Mathematical Alphanumeric Symbols
1D800 1DAAF Sutton SignWriting
1E000 1E02F Glagolitic Supplement
1E100 1E14F Nyiakeng Puachue Hmong
1E2C0 1E2FF Wancho
1E800 1E8DF Mende Kikakui
1E900 1E95F Adlam
1EC70 1ECBF Indic Siyaq Numbers
1ED00 1ED4F Ottoman Siyaq Numbers
1EE00 1EEFF Arabic Mathematical Alphabetic Symbols
1F000 1F02F Mahjong Tiles
1F030 1F09F Domino Tiles
1F0A0 1F0FF Playing Cards
1F100 1F1FF Enclosed Alphanumeric Supplement
1F200 1F2FF Enclosed Ideographic Supplement
1F300 1F5FF Miscellaneous Symbols and Pictographs
1F600 1F64F Emoticons
1F650 1F67F Ornamental Dingbats
1F680 1F6FF Transport and Map Symbols
1F700 1F77F Alchemical Symbols
1F780 1F7FF Geometric Shapes Extended
1F800 1F8FF Supplemental Arrows-C
1F900 1F9FF Supplemental Symbols and Pictographs
1FA00 1FA6F Chess Symbols
1FA70 1FAFF Symbols and Pictographs Extended-A
1FB00 1FBFF Symbols for Legacy Computing
20000 2A6DF CJK Unified Ideographs Extension B
2A700 2B73F CJK Unified Ideographs Extension C
2B740 2B81F CJK Unified Ideographs Extension D
2B820 2CEAF CJK Unified Ideographs Extension E
2CEB0 2EBEF CJK Unified Ideographs Extension F
2F800 2FA1F CJK Compatibility Ideographs Supplement
30000 3134F CJK Unified Ideographs Extension G
E0000 E007F Tags
E0100 E01EF Variation Selectors Supplement
F0000 FFFFF Supplementary Private Use Area-A
100000 10FFFF Supplementary Private Use Area-B
"""


@dataclass(frozen=True)
class Block:
    """One Unicode block: inclusive code-point range plus its name."""

    start: int
    end: int
    name: str

    def __contains__(self, item: int | str) -> bool:
        cp = ord(item) if isinstance(item, str) else item
        return self.start <= cp <= self.end

    @property
    def is_surrogate(self) -> bool:
        return "Surrogate" in self.name

    @property
    def is_private_use(self) -> bool:
        return "Private Use" in self.name

    def first_assigned(self) -> str | None:
        """Return the first *assigned*, non-surrogate character in the block."""
        if self.is_surrogate:
            return None
        for cp in range(self.start, self.end + 1):
            if unicodedata.category(chr(cp)) != "Cn":
                return chr(cp)
        return None


def _load() -> list[Block]:
    blocks = []
    for line in _BLOCK_TABLE.strip().splitlines():
        start, end, name = line.split(" ", 2)
        blocks.append(Block(int(start, 16), int(end, 16), name))
    return blocks


#: The full registry, ordered by starting code point.
BLOCKS: list[Block] = _load()

_STARTS = [block.start for block in BLOCKS]


def block_of(char: str | int) -> Block | None:
    """Return the block containing ``char``, or None for a gap code point."""
    cp = ord(char) if isinstance(char, str) else char
    index = bisect.bisect_right(_STARTS, cp) - 1
    if index >= 0 and cp <= BLOCKS[index].end:
        return BLOCKS[index]
    return None


def block_by_name(name: str) -> Block:
    """Look up a block by its exact name."""
    for block in BLOCKS:
        if block.name == name:
            return block
    raise KeyError(name)


def sample_block_characters(
    exclude_surrogates: bool = True,
    exclude_private_use: bool = False,
    assigned_only: bool = True,
) -> list[str]:
    """Sample one character per block, as the paper's generator does."""
    samples: list[str] = []
    for block in BLOCKS:
        if exclude_surrogates and block.is_surrogate:
            continue
        if exclude_private_use and block.is_private_use:
            continue
        if assigned_only:
            ch = block.first_assigned()
            if ch is None:
                # Private-use blocks have no 'assigned' chars; take the start.
                ch = chr(block.start) if block.is_private_use else None
            if ch is not None:
                samples.append(ch)
        else:
            samples.append(chr(block.start))
    return samples
