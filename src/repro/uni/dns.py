"""DNS hostname syntax per RFC 1034 / RFC 5890 (LDH rule).

These checks back the linter's DNSName constraints: in the context of a
certificate DNSName, IA5String is further restricted to the *preferred
name syntax* — letters, digits, hyphen, and dots between labels.
"""

from __future__ import annotations

import string

MAX_LABEL_OCTETS = 63
MAX_NAME_OCTETS = 253

_LDH_CHARS = frozenset(string.ascii_letters + string.digits + "-")


def label_violations(label: str, allow_underscore: bool = False) -> list[str]:
    """Return human-readable LDH violations for one DNS label."""
    problems: list[str] = []
    if not label:
        problems.append("empty label")
        return problems
    if len(label) > MAX_LABEL_OCTETS:
        problems.append(f"label longer than {MAX_LABEL_OCTETS} octets ({len(label)})")
    allowed = _LDH_CHARS | {"_"} if allow_underscore else _LDH_CHARS
    bad = sorted({ch for ch in label if ch not in allowed})
    if bad:
        shown = ", ".join(f"U+{ord(ch):04X}" for ch in bad[:8])
        problems.append(f"non-LDH character(s): {shown}")
    if label.startswith("-"):
        problems.append("label starts with hyphen")
    if label.endswith("-"):
        problems.append("label ends with hyphen")
    return problems


def is_ldh_label(label: str) -> bool:
    """Whether ``label`` satisfies the LDH rule of RFC 5890 2.3.1."""
    return not label_violations(label)


def is_reserved_ldh_label(label: str) -> bool:
    """Whether ``label`` has hyphens in positions 3 and 4 (R-LDH)."""
    return len(label) >= 4 and label[2:4] == "--"


def is_xn_label(label: str) -> bool:
    """Whether ``label`` carries the IDNA ACE prefix (case-insensitive)."""
    return label[:4].lower() == "xn--"


def name_violations(
    name: str,
    allow_wildcard: bool = True,
    allow_trailing_dot: bool = True,
) -> list[str]:
    """Return violations of the preferred name syntax for a full name."""
    problems: list[str] = []
    if not name:
        return ["empty name"]
    candidate = name
    if allow_trailing_dot and candidate.endswith(".") and candidate != ".":
        candidate = candidate[:-1]
    if len(candidate) > MAX_NAME_OCTETS:
        problems.append(f"name longer than {MAX_NAME_OCTETS} octets ({len(candidate)})")
    labels = candidate.split(".")
    for index, label in enumerate(labels):
        if allow_wildcard and index == 0 and label == "*":
            continue
        for problem in label_violations(label):
            problems.append(f"label {index + 1} ({label!r}): {problem}")
    return problems


def is_valid_dns_name(name: str, allow_wildcard: bool = True) -> bool:
    """Whether ``name`` satisfies the certificate DNSName syntax."""
    return not name_violations(name, allow_wildcard=allow_wildcard)
