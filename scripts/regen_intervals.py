#!/usr/bin/env python
"""Regenerate src/repro/uni/intervals.py from the authoritative charsets.

Usage::

    PYTHONPATH=src python scripts/regen_intervals.py

Rewrites the committed interval tables used by the compiled lint
kernels.  Run after changing CONTROL_CHARS, VISIBLE_ASCII, the
PrintableString charset, BIDI_CONTROLS, INVISIBLE_CHARACTERS, or
CONFUSABLE_MAP; the test suite fails when the committed file drifts.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.uni.intervals_gen import write_module  # noqa: E402


def main() -> None:
    """Regenerate the committed table module and report where it went."""
    target = write_module()
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
