"""Mislead CT monitors with crafted Unicerts (RQ3, Section 6.1).

Issues forged certificates for a victim domain using the paper's
concealment techniques, indexes them into five CT monitor models, and
shows which monitors a vigilant domain owner would still be blind on.

Run with:  python examples/ct_monitor_evasion.py [victim-domain]
"""

import sys

from repro.threats import concealment_matrix, craft_forged_certificates, run_experiment
from repro.threats.monitor_misleading import derive_monitor_matrix


def main(victim: str = "victim.example.com") -> None:
    print(f"victim domain: {victim}\n")

    print("forged certificates crafted by the malicious CA:")
    for technique, cert in craft_forged_certificates(victim).items():
        cn = cert.subject_common_names[0]
        print(f"  {technique:<20} CN={cn!r}")

    print("\nconcealment outcome per monitor:")
    results = run_experiment(victim)
    matrix = concealment_matrix(results)
    monitors = sorted({r.monitor for r in results})
    print(f"{'technique':<22}" + "".join(f"{m[:14]:>16}" for m in monitors))
    for technique, row in matrix.items():
        print(
            f"{technique:<22}"
            + "".join(f"{'CONCEALED' if row[m] else 'found':>16}" for m in monitors)
        )

    print("\nmonitor feature matrix (Table 6, derived by probing):")
    for monitor, features in derive_monitor_matrix().items():
        gaps = [name for name, ok in features.items() if not ok]
        print(f"  {monitor:<18} gaps: {', '.join(gaps) or 'none'}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "victim.example.com")
