"""Quickstart: build a Unicert, lint it, inspect the findings.

Run with:  python examples/quickstart.py
"""

import datetime as dt

from repro.asn1 import BMP_STRING
from repro.asn1.oid import OID_ORGANIZATION_NAME
from repro.lint import run_lints
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)


def main() -> None:
    key = generate_keypair(seed=42)

    # A compliant internationalized certificate: IDN in A-label form,
    # CN mirrored in the SAN, UTF8String subject attributes.
    good = (
        CertificateBuilder()
        .subject_cn("xn--mnchen-3ya.example.de")
        .subject_attr(OID_ORGANIZATION_NAME, "Münchener Beispiel GmbH")
        .not_before(dt.datetime(2024, 6, 1))
        .validity_days(90)
        .add_extension(subject_alt_name(GeneralName.dns("xn--mnchen-3ya.example.de")))
        .sign(key)
    )
    report = run_lints(good)
    print(f"compliant cert -> findings: {len(report.findings)}")

    # A noncompliant Unicert: BMPString organization, control character
    # in the CN, deceptive IDN label, CN missing from the SAN.
    bad = (
        CertificateBuilder()
        .subject_cn("xn--www-hn0a.example.com")
        .subject_attr(OID_ORGANIZATION_NAME, "Evil\x00 Entity", BMP_STRING)
        .not_before(dt.datetime(2024, 6, 1))
        .validity_days(1095)
        .add_extension(subject_alt_name(GeneralName.dns("other.example.com")))
        .sign(key)
    )
    report = run_lints(bad)
    print(f"noncompliant cert -> findings: {len(report.findings)}")
    for result in report.findings:
        marker = "ERROR" if result.status.value == "error" else "WARN "
        print(f"  [{marker}] {result.lint.name}: {result.details}")
        print(f"          source: {result.lint.citation}")


if __name__ == "__main__":
    main()
