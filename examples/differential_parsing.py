"""Differential-test the nine TLS library models (RQ2 pipeline).

Re-derives the paper's Table 4 (decoding methods) and Table 5 (character
checking / escaping violations) by feeding generated test bytes through
each library model and running the Section 3.2 inference algorithm.

Run with:  python examples/differential_parsing.py
"""

from repro.tlslibs import (
    ALL_PROFILES,
    TABLE4_SCENARIOS,
    derive_charcheck_report,
    derive_decoding_matrix,
)


def main() -> None:
    libraries = [profile.name for profile in ALL_PROFILES]

    print("Table 4 — inferred decoding methods")
    print("  (O compliant, T over-tolerant, X incompatible, M modified, - unsupported)\n")
    matrix = derive_decoding_matrix(ALL_PROFILES)
    print(f"{'scenario':<26}" + "".join(f"{lib[:13]:>15}" for lib in libraries))
    for label, _tag, _context in TABLE4_SCENARIOS:
        row = []
        for lib in libraries:
            cell = matrix.cell(label, lib)
            row.append(f"{cell.label[:13]:>14}{cell.practice.symbol}")
        print(f"{label:<26}" + "".join(row))

    print("\nTable 5 — character-check and escaping violations")
    print("  (O none, V unexploited, X exploited, - not tested)\n")
    report = derive_charcheck_report(ALL_PROFILES)
    rows = sorted({key[0] for key in report.cells})
    print(f"{'violation':<30}" + "".join(f"{lib[:10]:>12}" for lib in libraries))
    for row in rows:
        print(f"{row:<30}" + "".join(f"{report.cell(row, lib):>12}" for lib in libraries))

    print("\nheadline findings reproduced:")
    print("  - Forge decodes UTF8String with ISO-8859-1 (incompatible)")
    print("  - GnuTLS decodes PrintableString with UTF-8 (over-tolerant)")
    print("  - OpenSSL hex-escapes undecodable bytes (modified)")
    print("  - PyOpenSSL's GN text representation enables subfield forgery (exploited)")


if __name__ == "__main__":
    main()
