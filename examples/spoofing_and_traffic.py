"""User spoofing and traffic obfuscation demos (Section 6.2, Appendix F).

Shows (1) the bidi-override warning-page spoof in the browser models,
(2) subject-variant evasion of middlebox rules, and (3) the duplicate-CN
placement trick that defeats Snort and Zeek in opposite directions.

Run with:  python examples/spoofing_and_traffic.py
"""

from repro.threats import (
    ALL_BROWSERS,
    duplicate_position_evasion,
    evasion_experiment,
)
from repro.threats.spoofing import chrome_warning_spoof_demo, derive_browser_matrix


def main() -> None:
    crafted, displayed = chrome_warning_spoof_demo()
    print("warning-page spoof (paper Figure 7):")
    print(f"  certificate CN : {crafted!r}")
    print(f"  user sees      : {displayed!r}\n")

    print("per-browser feasibility (Table 14):")
    for browser, results in derive_browser_matrix().items():
        verdict = "VULNERABLE" if results["warning_spoof_feasible"] else "protected"
        print(f"  {browser:<16} warning spoof: {verdict}")

    print("\nmiddlebox rule evasion via subject variants (Section 6.2):")
    for result in evasion_experiment("Evil Entity Ltd"):
        if result.evaded:
            print(f"  {result.middlebox:<10} evaded by {result.strategy.name}: {result.variant!r}")

    print("\nduplicate-CN placement (P2.1):")
    for key, value in duplicate_position_evasion().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
