"""Parsing-flaw exploit chains: revocation subversion + hostname bypass.

Demonstrates the two Section 5 attack impacts end to end:

1. CRL-URL rewriting (Section 5.2): PyOpenSSL's control-character
   replacement redirects the revocation check to an attacker host.
2. BMPString hostname bypass (Section 5.1): a CN whose UTF-16 code
   units spell "githube.cn" validates on ASCII-incompatible decoders.

Run with:  python examples/revocation_and_hostname.py
"""

from repro.threats.revocation import revocation_subversion_experiment
from repro.tlslibs.hostname import bmp_cn_bypass_demo


def main() -> None:
    print("=== revocation subversion (Section 5.2) ===")
    print("certificate CRLDP: 'http://ssl\\x01test.com/ca.crl' (CA-signed)")
    print("attacker controls: 'http://ssl.test.com/ca.crl'\n")
    for name, outcome in revocation_subversion_experiment().items():
        url = (outcome.checked_url or "").replace("\x01", "\\x01")
        verdict = "ACCEPTED (revocation missed!)" if outcome.accepted else "rejected"
        print(f"  {name:<12} fetched {url:<32} -> certificate {verdict}")

    print("\n=== BMPString hostname-validation bypass (Section 5.1) ===")
    print("CN = BMPString '杩瑨畢攮据' (UTF-16BE bytes == b'githube.cn')\n")
    for name, verdict in bmp_cn_bypass_demo().items():
        seen = verdict.candidates[0] if verdict.candidates else "?"
        result = "VALIDATES githube.cn (bypass!)" if verdict.matched else "no match"
        print(f"  {name:<20} parsed CN as {seen!r:<18} -> {result}")


if __name__ == "__main__":
    main()
