"""Scan a synthetic CT corpus with the Unicert linter (RQ1 pipeline).

Generates a scaled-down replica of the paper's CT dataset, runs all 95
lints over every certificate, and prints the noncompliance landscape —
the Section 4 measurement, end to end.

Run with:  python examples/lint_ct_corpus.py [scale]
"""

import sys

from repro.analysis import build_table1, issuer_table, lint_corpus, top_lints
from repro.ct import CorpusGenerator
from repro.lint import NoncomplianceType


def main(scale: float = 1 / 10000) -> None:
    print(f"generating corpus at scale {scale:g} ...")
    corpus = CorpusGenerator(seed=2025, scale=scale).generate()
    print(f"  {len(corpus.records)} Unicerts from "
          f"{len(corpus.by_issuer())} issuer organizations")

    print("linting (95 lints per certificate) ...")
    reports = lint_corpus(corpus)
    table = build_table1(corpus, reports)

    print(f"\nnoncompliant: {table.nc_certs} ({table.nc_rate:.2%}; paper: 0.72%)")
    print(f"trusted share of NC: {table.trusted_share:.1%} (paper: 65.3%)")
    print(f"ignoring effective dates: {table.nc_certs_ignoring_dates} "
          f"(the paper's 249K -> 1.8M footnote)")

    print("\nby noncompliance type:")
    for nc_type in NoncomplianceType:
        row = table.rows[nc_type]
        print(f"  {nc_type.value:<22} {row.nc_certs:>6} certs "
              f"({row.nc_lints_total} lints fired)")

    print("\ntop 10 lints:")
    for name, count in top_lints(reports, count=10):
        print(f"  {count:>6}  {name}")

    print("\ntop issuers by noncompliant Unicerts:")
    head, other = issuer_table(corpus, reports)
    for row in head[:8]:
        print(f"  {row.noncompliant:>6}  {row.org} ({row.nc_rate:.1%} of its Unicerts)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 10000)
