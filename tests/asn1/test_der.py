"""Tests for the DER encoder/decoder."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.asn1 import (
    DERDecodeError,
    Element,
    PRINTABLE_STRING,
    Tag,
    TagClass,
    UTF8_STRING,
    UniversalTag,
    decode_boolean,
    decode_integer,
    decode_length,
    decode_oid,
    decode_string,
    decode_time,
    encode_boolean,
    encode_integer,
    encode_length,
    encode_null,
    encode_oid,
    encode_sequence,
    encode_set,
    encode_string,
    encode_time,
    explicit,
    implicit,
    oid,
    parse,
    parse_all,
)


class TestLength:
    def test_short_form(self):
        assert encode_length(0) == b"\x00"
        assert encode_length(127) == b"\x7f"

    def test_long_form(self):
        assert encode_length(128) == b"\x81\x80"
        assert encode_length(256) == b"\x82\x01\x00"

    def test_decode_roundtrip(self):
        for n in (0, 1, 127, 128, 255, 256, 65535, 1 << 20):
            length, offset = decode_length(encode_length(n), 0)
            assert length == n

    def test_indefinite_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_length(b"\x80", 0)

    def test_non_minimal_rejected_strict(self):
        with pytest.raises(DERDecodeError):
            decode_length(b"\x81\x05", 0, strict=True)

    def test_non_minimal_allowed_lenient(self):
        assert decode_length(b"\x81\x05", 0, strict=False)[0] == 5

    def test_leading_zero_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_length(b"\x82\x00\x80", 0, strict=True)


class TestInteger:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 256, -1, -128, -129, 2**64])
    def test_roundtrip(self, value):
        element = encode_integer(value)
        assert decode_integer(parse(element.encode())) == value

    def test_minimal_encoding(self):
        assert encode_integer(0).content == b"\x00"
        assert encode_integer(128).content == b"\x00\x80"
        assert encode_integer(-1).content == b"\xff"

    def test_non_minimal_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_integer(parse(b"\x02\x02\x00\x01"))

    def test_empty_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_integer(Element.primitive(Tag.universal(UniversalTag.INTEGER), b""))


class TestBoolean:
    def test_roundtrip(self):
        assert decode_boolean(parse(encode_boolean(True).encode())) is True
        assert decode_boolean(parse(encode_boolean(False).encode())) is False

    def test_der_values(self):
        assert encode_boolean(True).content == b"\xff"
        assert encode_boolean(False).content == b"\x00"

    def test_nonstandard_strict_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_boolean(parse(b"\x01\x01\x01"))

    def test_nonstandard_lenient(self):
        assert decode_boolean(parse(b"\x01\x01\x01"), strict=False) is True


class TestStructure:
    def test_sequence_roundtrip(self):
        seq = encode_sequence(encode_integer(5), encode_null())
        parsed = parse(seq.encode())
        assert parsed.tag.number == UniversalTag.SEQUENCE
        assert len(parsed.children) == 2
        assert decode_integer(parsed.child(0)) == 5

    def test_set_sorting(self):
        unsorted = encode_set(encode_integer(300), encode_integer(2))
        assert decode_integer(unsorted.child(0)) == 2

    def test_nested(self):
        inner = encode_sequence(encode_string("x", PRINTABLE_STRING))
        outer = encode_sequence(inner, encode_integer(1))
        parsed = parse(outer.encode())
        assert decode_string(parsed.child(0).child(0)) == "x"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DERDecodeError):
            parse(encode_null().encode() + b"\x00")

    def test_parse_all(self):
        blob = encode_integer(1).encode() + encode_integer(2).encode()
        assert [decode_integer(e) for e in parse_all(blob)] == [1, 2]

    def test_truncated_content(self):
        with pytest.raises(DERDecodeError):
            parse(b"\x30\x05\x02\x01")

    def test_empty_input(self):
        with pytest.raises(DERDecodeError):
            parse(b"")

    def test_find(self):
        seq = encode_sequence(encode_integer(7), encode_null())
        found = seq.find(UniversalTag.NULL)
        assert found is not None and found.tag.number == UniversalTag.NULL
        assert seq.find(UniversalTag.BOOLEAN) is None


class TestTagging:
    def test_explicit(self):
        wrapped = explicit(3, encode_integer(9))
        parsed = parse(wrapped.encode())
        assert parsed.tag.cls is TagClass.CONTEXT
        assert parsed.tag.number == 3
        assert decode_integer(parsed.child(0)) == 9

    def test_implicit_primitive(self):
        wrapped = implicit(2, encode_string("a.com", UTF8_STRING))
        assert wrapped.tag.cls is TagClass.CONTEXT
        assert not wrapped.tag.constructed
        assert wrapped.content == b"a.com"

    def test_implicit_constructed(self):
        wrapped = implicit(4, encode_sequence(encode_integer(1)))
        assert wrapped.tag.constructed
        assert len(wrapped.children) == 1


class TestOIDElement:
    def test_roundtrip(self):
        value = oid("1.3.6.1.5.5.7.1.1")
        assert decode_oid(parse(encode_oid(value).encode())) == value


class TestTime:
    def test_utctime_pre_2050(self):
        when = dt.datetime(2024, 5, 6, 12, 30, 0)
        element = encode_time(when)
        assert element.tag.number == UniversalTag.UTC_TIME
        assert decode_time(parse(element.encode())) == when

    def test_generalized_post_2050(self):
        when = dt.datetime(2055, 1, 2, 3, 4, 5)
        element = encode_time(when)
        assert element.tag.number == UniversalTag.GENERALIZED_TIME
        assert decode_time(parse(element.encode())) == when

    def test_utctime_window(self):
        # 500101000000Z means 1950, not 2050.
        element = Element.primitive(
            Tag.universal(UniversalTag.UTC_TIME), b"500101000000Z"
        )
        assert decode_time(element).year == 1950

    def test_malformed_time(self):
        element = Element.primitive(Tag.universal(UniversalTag.UTC_TIME), b"not-a-time")
        with pytest.raises(DERDecodeError):
            decode_time(element)


class TestStringElements:
    def test_declared_tag_decoding(self):
        element = encode_string("hello", UTF8_STRING)
        assert decode_string(parse(element.encode())) == "hello"

    def test_non_string_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_string(encode_integer(5))


@given(st.integers(min_value=-(2**128), max_value=2**128))
def test_integer_roundtrip_property(value):
    assert decode_integer(parse(encode_integer(value).encode())) == value


@given(st.binary(max_size=64))
def test_octet_string_roundtrip_property(data):
    from repro.asn1 import encode_octet_string

    parsed = parse(encode_octet_string(data).encode())
    assert parsed.content == data


@given(st.lists(st.integers(min_value=0, max_value=2**32), max_size=8))
def test_sequence_of_integers_property(values):
    seq = encode_sequence(*[encode_integer(v) for v in values])
    parsed = parse(seq.encode())
    assert [decode_integer(c) for c in parsed.children] == values
