"""Strict-vs-lenient decoding differences across the ASN.1 layer.

The differential harness depends on the two modes diverging exactly
where real permissive parsers diverge from the DER standard.
"""

import pytest

from repro.asn1 import (
    DERDecodeError,
    Element,
    Tag,
    TagClass,
    UniversalTag,
    decode_boolean,
    decode_integer,
    parse,
)


def tlv(tag_byte: int, content: bytes, long_length: bool = False) -> bytes:
    if long_length:
        return bytes([tag_byte, 0x81, len(content)]) + content
    return bytes([tag_byte, len(content)]) + content


class TestLengthLeniency:
    def test_non_minimal_length_strict_vs_lenient(self):
        blob = tlv(0x02, b"\x05", long_length=True)
        with pytest.raises(DERDecodeError):
            parse(blob, strict=True)
        assert decode_integer(parse(blob, strict=False)) == 5

    def test_indefinite_rejected_in_both_modes(self):
        blob = b"\x30\x80\x05\x00\x00\x00"
        for strict in (True, False):
            with pytest.raises(DERDecodeError):
                parse(blob, strict=strict)


class TestValueLeniency:
    def test_nonminimal_integer(self):
        blob = tlv(0x02, b"\x00\x05")
        with pytest.raises(DERDecodeError):
            decode_integer(parse(blob))
        assert decode_integer(parse(blob), strict=False) == 5

    def test_boolean_nonstandard_true(self):
        blob = tlv(0x01, b"\x2a")
        with pytest.raises(DERDecodeError):
            decode_boolean(parse(blob))
        assert decode_boolean(parse(blob), strict=False) is True


class TestSetOrdering:
    def test_unsorted_set_parses_in_both_modes(self):
        # DER requires sorted SET OF; real certificates sometimes break
        # this and parsers accept it — so does our decoder (the linter
        # would be the place to flag it).
        inner_b = tlv(0x02, b"\x02")
        inner_a = tlv(0x02, b"\x01")
        blob = bytes([0x31, len(inner_b + inner_a)]) + inner_b + inner_a
        parsed = parse(blob, strict=True)
        assert [decode_integer(c) for c in parsed.children] == [2, 1]


class TestStructureErrors:
    def test_child_index_error(self):
        element = parse(b"\x30\x00")
        with pytest.raises(DERDecodeError):
            element.child(0)

    def test_primitive_constructed_mismatch(self):
        from repro.asn1 import DEREncodeError

        with pytest.raises(DEREncodeError):
            Element.primitive(Tag.universal(UniversalTag.SEQUENCE), b"")
        with pytest.raises(DEREncodeError):
            Element.constructed(Tag.universal(UniversalTag.INTEGER), [])

    def test_nested_truncation_offset_reported(self):
        try:
            parse(b"\x30\x04\x02\x05\x01\x02")
        except DERDecodeError as exc:
            assert exc.offset is not None
        else:  # pragma: no cover
            raise AssertionError("expected DERDecodeError")
