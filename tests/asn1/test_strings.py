"""Tests for the eight ASN.1 string-type codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.asn1 import (
    BMP_STRING,
    CharsetError,
    IA5_STRING,
    NUMERIC_STRING,
    PRINTABLE_STRING,
    STRING_SPECS,
    StringDecodeError,
    TELETEX_STRING,
    UNIVERSAL_STRING,
    UTF8_STRING,
    VISIBLE_STRING,
    spec_for_tag,
)


class TestPrintableString:
    def test_accepts_standard_charset(self):
        assert PRINTABLE_STRING.encode("Test Org (EU) +1,2.3:=?/-'") == (
            b"Test Org (EU) +1,2.3:=?/-'"
        )

    @pytest.mark.parametrize("bad", ["@", "&", "*", "_", "!", "é", "\x00"])
    def test_rejects_excluded_characters(self, bad):
        with pytest.raises(CharsetError):
            PRINTABLE_STRING.encode(f"abc{bad}")

    def test_lenient_encode_allows_latin1(self):
        assert PRINTABLE_STRING.encode("café", strict=False) == b"caf\xe9"

    def test_strict_decode_rejects_at_sign(self):
        with pytest.raises(CharsetError):
            PRINTABLE_STRING.decode(b"user@host")

    def test_lenient_decode_passes_through(self):
        assert PRINTABLE_STRING.decode(b"user@host", strict=False) == "user@host"

    def test_violations_lists_offenders(self):
        assert PRINTABLE_STRING.violations("a@b&c") == ["&", "@"]


class TestIA5String:
    def test_full_ascii_ok(self):
        text = "".join(chr(cp) for cp in range(0x80))
        assert IA5_STRING.decode(IA5_STRING.encode(text)) == text

    def test_rejects_non_ascii(self):
        with pytest.raises(CharsetError):
            IA5_STRING.encode("ü")

    def test_lenient_high_bytes(self):
        assert IA5_STRING.decode(b"\xfftest", strict=False) == "ÿtest"


class TestNumericString:
    def test_digits_and_space(self):
        assert NUMERIC_STRING.encode("12 34") == b"12 34"

    def test_rejects_letters(self):
        with pytest.raises(CharsetError):
            NUMERIC_STRING.encode("12a")


class TestVisibleString:
    def test_rejects_control(self):
        with pytest.raises(CharsetError):
            VISIBLE_STRING.encode("a\x1bb")

    def test_accepts_printable_ascii(self):
        assert VISIBLE_STRING.encode("~ ok!") == b"~ ok!"


class TestUTF8String:
    def test_multilingual(self):
        text = "株式会社 中国銀行"
        assert UTF8_STRING.decode(UTF8_STRING.encode(text)) == text

    def test_invalid_utf8_raises(self):
        with pytest.raises(StringDecodeError):
            UTF8_STRING.decode(b"\xc3\x28")

    def test_control_chars_allowed_by_codec(self):
        # The *codec* accepts control chars; the linter flags them.
        assert UTF8_STRING.decode(b"a\x00b") == "a\x00b"


class TestBMPString:
    def test_ucs2_roundtrip(self):
        text = "café 中"
        encoded = BMP_STRING.encode(text)
        assert len(encoded) == 2 * len(text)
        assert BMP_STRING.decode(encoded) == text

    def test_rejects_astral(self):
        with pytest.raises(CharsetError):
            BMP_STRING.encode("\U0001f600")

    def test_odd_length_rejected(self):
        with pytest.raises(StringDecodeError):
            BMP_STRING.decode(b"\x00a\x00")

    def test_surrogate_strict_rejected(self):
        with pytest.raises(StringDecodeError):
            BMP_STRING.decode(b"\xd8\x00")

    def test_surrogate_lenient_replaced(self):
        assert BMP_STRING.decode(b"\xd8\x00", strict=False) == "�"

    def test_ascii_misread(self):
        # Paper Section 5.1: a hostname packed into BMP code units is
        # misread as ASCII by an incompatible decoder.
        text = "杩瑨畢攮据"
        assert BMP_STRING.encode(text).decode("ascii") == "githube.cn"


class TestUniversalString:
    def test_ucs4_roundtrip(self):
        text = "aé\U0001f600"
        encoded = UNIVERSAL_STRING.encode(text)
        assert len(encoded) == 4 * len(text)
        assert UNIVERSAL_STRING.decode(encoded) == text

    def test_bad_length_rejected(self):
        with pytest.raises(StringDecodeError):
            UNIVERSAL_STRING.decode(b"\x00\x00\x00")

    def test_out_of_range_code_point(self):
        with pytest.raises(StringDecodeError):
            UNIVERSAL_STRING.decode((0x110000).to_bytes(4, "big"))

    def test_out_of_range_lenient(self):
        assert UNIVERSAL_STRING.decode((0x110000).to_bytes(4, "big"), strict=False) == "�"


class TestTeletexString:
    def test_latin1_model(self):
        assert TELETEX_STRING.decode(b"St\xf6ri AG") == "Störi AG"

    def test_strict_rejects_control(self):
        with pytest.raises(CharsetError):
            TELETEX_STRING.decode(b"a\x01b")

    def test_encode_roundtrip(self):
        assert TELETEX_STRING.decode(TELETEX_STRING.encode("Café")) == "Café"

    def test_cannot_encode_cjk(self):
        with pytest.raises(CharsetError):
            TELETEX_STRING.encode("中", strict=False)


class TestRegistry:
    def test_eight_specs(self):
        assert len(STRING_SPECS) == 8

    def test_spec_for_tag(self):
        assert spec_for_tag(12) is UTF8_STRING
        assert spec_for_tag(19) is PRINTABLE_STRING

    def test_unknown_tag(self):
        with pytest.raises(StringDecodeError):
            spec_for_tag(99)


@given(st.text(alphabet=st.characters(max_codepoint=0x7E, min_codepoint=0x20)))
def test_visible_roundtrip_property(text):
    assert VISIBLE_STRING.decode(VISIBLE_STRING.encode(text)) == text


@given(st.text(alphabet=st.characters(blacklist_categories=("Cs",))))
def test_utf8_roundtrip_property(text):
    assert UTF8_STRING.decode(UTF8_STRING.encode(text)) == text


@given(
    st.text(
        alphabet=st.characters(max_codepoint=0xFFFF, blacklist_categories=("Cs",))
    )
)
def test_bmp_roundtrip_property(text):
    assert BMP_STRING.decode(BMP_STRING.encode(text)) == text
