"""Tests for OBJECT IDENTIFIER encoding/decoding and the OID registry."""

import pytest
from hypothesis import given, strategies as st

from repro.asn1 import DERDecodeError, DEREncodeError, ObjectIdentifier, oid
from repro.asn1.oid import (
    OID_COMMON_NAME,
    OID_EMAIL_ADDRESS,
    OID_EXT_SAN,
    OID_NAMES,
)


class TestOIDEncode:
    def test_common_name(self):
        assert OID_COMMON_NAME.encode_value() == bytes([0x55, 0x04, 0x03])

    def test_email_address(self):
        assert OID_EMAIL_ADDRESS.encode_value().hex() == "2a864886f70d010901"

    def test_san_extension(self):
        assert OID_EXT_SAN.encode_value() == bytes([0x55, 0x1D, 0x11])

    def test_large_arcs(self):
        # 2.999 encodes as 0x88 0x37 per the X.690 example.
        assert oid("2.999").encode_value() == bytes([0x88, 0x37])

    def test_invalid_single_arc(self):
        with pytest.raises(DEREncodeError):
            oid("2")

    def test_invalid_root(self):
        with pytest.raises(DEREncodeError):
            oid("3.1")

    def test_second_arc_range(self):
        with pytest.raises(DEREncodeError):
            oid("0.40")

    def test_malformed_text(self):
        with pytest.raises(DEREncodeError):
            oid("1.two.3")


class TestOIDDecode:
    def test_roundtrip_known(self):
        for dotted in OID_NAMES:
            value = oid(dotted)
            assert ObjectIdentifier.decode_value(value.encode_value()) == value

    def test_empty_rejected(self):
        with pytest.raises(DERDecodeError):
            ObjectIdentifier.decode_value(b"")

    def test_truncated_rejected(self):
        with pytest.raises(DERDecodeError):
            ObjectIdentifier.decode_value(bytes([0x55, 0x84]))

    def test_non_minimal_rejected(self):
        with pytest.raises(DERDecodeError):
            ObjectIdentifier.decode_value(bytes([0x55, 0x80, 0x03]))


class TestOIDNames:
    def test_known_name(self):
        assert OID_COMMON_NAME.name == "CN"
        assert OID_EXT_SAN.name == "subjectAltName"

    def test_unknown_name_falls_back_to_dotted(self):
        assert oid("1.2.3.4.5").name == "1.2.3.4.5"

    def test_str(self):
        assert str(OID_COMMON_NAME) == "2.5.4.3"


@given(
    st.lists(st.integers(min_value=0, max_value=2**40), min_size=0, max_size=6),
    st.integers(min_value=0, max_value=2),
)
def test_oid_roundtrip_property(tail, root):
    second = 39 if root < 2 else 999
    dotted = ".".join(str(arc) for arc in (root, second, *tail))
    value = oid(dotted)
    assert ObjectIdentifier.decode_value(value.encode_value()) == value
