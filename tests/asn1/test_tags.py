"""Tests for ASN.1 tag encoding and decoding."""

import pytest

from repro.asn1 import DERDecodeError, Tag, TagClass, UniversalTag, decode_tag
from repro.asn1.tags import STRING_TAG_NUMBERS


class TestTagEncode:
    def test_universal_primitive(self):
        assert Tag.universal(UniversalTag.INTEGER).encode() == b"\x02"

    def test_universal_constructed_inferred(self):
        assert Tag.universal(UniversalTag.SEQUENCE).encode() == b"\x30"
        assert Tag.universal(UniversalTag.SET).encode() == b"\x31"

    def test_context_tag(self):
        assert Tag.context(0).encode() == b"\x80"
        assert Tag.context(3, constructed=True).encode() == b"\xa3"

    def test_string_tags(self):
        assert Tag.universal(UniversalTag.UTF8_STRING).encode() == b"\x0c"
        assert Tag.universal(UniversalTag.PRINTABLE_STRING).encode() == b"\x13"
        assert Tag.universal(UniversalTag.IA5_STRING).encode() == b"\x16"
        assert Tag.universal(UniversalTag.BMP_STRING).encode() == b"\x1e"

    def test_high_tag_number(self):
        tag = Tag(TagClass.CONTEXT, False, 31)
        assert tag.encode() == b"\x9f\x1f"
        tag = Tag(TagClass.CONTEXT, False, 201)
        assert tag.encode() == b"\x9f\x81\x49"

    def test_negative_tag_number_rejected(self):
        with pytest.raises(Exception):
            Tag(TagClass.UNIVERSAL, False, -1)


class TestTagDecode:
    def test_roundtrip_low(self):
        for number in (1, 2, 3, 12, 19, 22, 30):
            tag = Tag.universal(number)
            decoded, offset = decode_tag(tag.encode())
            assert decoded == tag
            assert offset == 1

    def test_roundtrip_high(self):
        tag = Tag(TagClass.PRIVATE, True, 12345)
        decoded, offset = decode_tag(tag.encode())
        assert decoded == tag
        assert offset == len(tag.encode())

    def test_truncated(self):
        with pytest.raises(DERDecodeError):
            decode_tag(b"")

    def test_truncated_high_form(self):
        with pytest.raises(DERDecodeError):
            decode_tag(b"\x9f\x81")

    def test_high_form_for_low_number_rejected(self):
        with pytest.raises(DERDecodeError):
            decode_tag(b"\x9f\x1e")

    def test_offset_decoding(self):
        data = b"\xff\xff\x02"
        tag, offset = decode_tag(data, 2)
        assert tag.number == UniversalTag.INTEGER
        assert offset == 3


class TestTagProperties:
    def test_is_string(self):
        assert Tag.universal(UniversalTag.UTF8_STRING).is_string
        assert not Tag.universal(UniversalTag.INTEGER).is_string
        assert not Tag.context(12).is_string

    def test_string_tag_numbers_complete(self):
        assert len(STRING_TAG_NUMBERS) == 8

    def test_str_rendering(self):
        assert "UTF8_STRING" in str(Tag.universal(UniversalTag.UTF8_STRING))
        assert "CONTEXT" in str(Tag.context(0))
