"""Tests for the CT monitor behaviour models (Table 6)."""

import datetime as dt

import pytest

from repro.ct import ALL_MONITORS, MONITORS_BY_NAME
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=41)


def make_cert(cn: str, san: str | None = None):
    return (
        CertificateBuilder()
        .subject_cn(cn)
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns(san if san is not None else cn)))
        .sign(KEY)
    )


class TestRegistry:
    def test_five_monitors(self):
        assert len(ALL_MONITORS()) == 5

    def test_names(self):
        assert set(MONITORS_BY_NAME()) == {
            "Crt.sh",
            "SSLMate Spotter",
            "Facebook Monitor",
            "Entrust Search",
            "MerkleMap",
        }


class TestCaseInsensitivity:
    """P1.1: all monitors handle queries case-insensitively."""

    @pytest.mark.parametrize("name", list(MONITORS_BY_NAME()))
    def test_case_insensitive(self, name):
        monitor = MONITORS_BY_NAME()[name]
        monitor.submit(make_cert("Host.Example.COM"))
        assert monitor.search("host.example.com").matches


class TestFuzzySearch:
    """P1.2: missing fuzzy search misses slight variants."""

    def test_crtsh_fuzzy_finds_substring(self):
        monitor = MONITORS_BY_NAME()["Crt.sh"]
        monitor.submit(make_cert("sub.victim.example.com"))
        assert monitor.search("victim.example.com").matches

    def test_sslmate_exact_only(self):
        monitor = MONITORS_BY_NAME()["SSLMate Spotter"]
        monitor.submit(make_cert("sub.victim.example.com"))
        assert not monitor.search("victim.example.com").matches
        assert monitor.search("sub.victim.example.com").matches

    def test_merklemap_fuzzy(self):
        monitor = MONITORS_BY_NAME()["MerkleMap"]
        monitor.submit(make_cert("sub.victim.example.com"))
        assert monitor.search("victim").matches


class TestULabelChecks:
    """P1.3: only SSLMate and Facebook verify U-label legality."""

    DECEPTIVE = "xn--www-hn0a.example.com"  # decodes to LRM+www

    def test_sslmate_refuses(self):
        monitor = MONITORS_BY_NAME()["SSLMate Spotter"]
        result = monitor.search(self.DECEPTIVE)
        assert result.refused

    def test_facebook_refuses(self):
        monitor = MONITORS_BY_NAME()["Facebook Monitor"]
        assert monitor.search(self.DECEPTIVE).refused

    @pytest.mark.parametrize("name", ["Crt.sh", "Entrust Search", "MerkleMap"])
    def test_others_accept(self, name):
        monitor = MONITORS_BY_NAME()[name]
        monitor.submit(make_cert(self.DECEPTIVE))
        result = monitor.search(self.DECEPTIVE)
        assert not result.refused
        assert result.matches


class TestPunycodeHandling:
    def test_all_support_punycode_queries(self):
        for monitor in ALL_MONITORS():
            monitor.submit(make_cert("xn--mnchen-3ya.de"))
            assert monitor.search("xn--mnchen-3ya.de").matches, monitor.name

    def test_unicode_query_converted(self):
        monitor = MONITORS_BY_NAME()["Facebook Monitor"]
        monitor.submit(make_cert("xn--mnchen-3ya.de"))
        assert monitor.search("münchen.de").matches

    def test_entrust_no_punycode_cctld(self):
        monitor = MONITORS_BY_NAME()["Entrust Search"]
        domain = "shop.xn--p1ai"  # Cyrillic ccTLD .рф
        monitor.submit(make_cert(domain))
        result = monitor.search(domain)
        assert result.refused or not result.matches


class TestSpecialUnicodeIndexing:
    """P1.4: special characters disrupt some monitors' indexing."""

    def test_sslmate_cn_with_space_ignored(self):
        monitor = MONITORS_BY_NAME()["SSLMate Spotter"]
        monitor.submit(make_cert("evil name.example.com", san="other.example.com"))
        assert not monitor.search("evil name.example.com").matches

    def test_sslmate_cn_truncated_at_slash(self):
        monitor = MONITORS_BY_NAME()["SSLMate Spotter"]
        monitor.submit(make_cert("victim.com/path", san="other.example.com"))
        assert monitor.search("victim.com").matches
        assert not monitor.search("victim.com/path").matches

    def test_sslmate_drops_control_chars(self):
        monitor = MONITORS_BY_NAME()["SSLMate Spotter"]
        monitor.submit(make_cert("evil\x00entity.com", san="evil\x00entity.com"))
        assert not monitor.search("evil\x00entity.com").matches

    def test_crtsh_indexes_control_chars(self):
        monitor = MONITORS_BY_NAME()["Crt.sh"]
        monitor.submit(make_cert("evil\x00entity.com", san="evil\x00entity.com"))
        assert monitor.search("evil\x00entity.com").matches


class TestLogSync:
    def test_sync_filters_precerts(self):
        from repro.ct import CTLog

        log = CTLog()
        pre = (
            CertificateBuilder()
            .subject_cn("pre.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .precertificate()
            .sign(KEY)
        )
        final = make_cert("final.example.com")
        log.submit(pre)
        log.submit(final)
        monitor = MONITORS_BY_NAME()["Crt.sh"]
        indexed = monitor.sync_from_log(log)
        assert indexed == 1
        assert monitor.search("final.example.com").matches
        assert not monitor.search("pre.example.com").matches

    def test_sync_can_include_precerts(self):
        from repro.ct import CTLog

        log = CTLog()
        pre = (
            CertificateBuilder()
            .subject_cn("pre.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .precertificate()
            .sign(KEY)
        )
        log.submit(pre)
        monitor = MONITORS_BY_NAME()["Crt.sh"]
        assert monitor.sync_from_log(log, include_precerts=True) == 1
