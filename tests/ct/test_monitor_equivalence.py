"""The incremental engine's headline guarantee, end to end:

* a monitor that tails the whole log produces a grand total
  byte-identical to the one-shot batch run over the same records;
* killing the monitor mid-stream and resuming from its checkpoint
  yields the same final windowed summary, byte for byte;
* both hold at ``jobs=1`` and ``jobs=4`` (real pool dispatch).
"""

import pytest

from repro.ct import CorpusGenerator, MonitorConfig, TailLog, TailMonitor, drive
from repro.engine import run_corpus
from repro.lint import summary_to_json

#: jobs=4 over 128-entry batches genuinely dispatches to the pool
#: (two 64-record shards); smaller batches would silently clamp to the
#: serial executor and prove nothing about parallel folding.
BATCH = 128


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=31, scale=0.00002).generate()


@pytest.fixture(scope="module")
def one_shot(corpus):
    return summary_to_json(run_corpus(corpus, jobs=1).summary)


def _config(tmp_path, jobs):
    return MonitorConfig(
        batch_size=BATCH,
        jobs=jobs,
        index_window=256,
        checkpoint_path=str(tmp_path / "monitor.ckpt"),
        store_dir=str(tmp_path / "segments"),
    )


def _uninterrupted(corpus, tmp_path, jobs):
    monitor = TailMonitor(TailLog(corpus), _config(tmp_path, jobs))
    outcomes = drive(monitor)
    return monitor, outcomes


@pytest.mark.parametrize("jobs", [1, 4])
class TestEquivalence:
    def test_tail_total_matches_the_one_shot_batch_run(
        self, corpus, one_shot, tmp_path, jobs
    ):
        monitor, _ = _uninterrupted(corpus, tmp_path, jobs)
        assert summary_to_json(monitor.window.total.summary) == one_shot

    def test_kill_resume_is_byte_identical_to_uninterrupted(
        self, corpus, tmp_path, jobs
    ):
        reference, ref_outcomes = _uninterrupted(
            corpus, tmp_path / "reference", jobs
        )

        # "Process one": consume three batches, then die without any
        # shutdown courtesy — the checkpoint after batch 3 is all that
        # survives.
        killed = TailMonitor(
            TailLog(corpus), _config(tmp_path / "killed", jobs)
        )
        first_outcomes = drive(killed, batches=3)
        assert killed.position == 3 * BATCH

        # "Process two": a fresh log (the deterministic stream
        # re-derives the same tree) and a fresh monitor that resumes.
        resumed = TailMonitor(
            TailLog(corpus), _config(tmp_path / "killed", jobs)
        )
        assert resumed.start(resume=True) is True
        assert resumed.recovered is None
        assert resumed.position == 3 * BATCH
        second_outcomes = drive(resumed)

        assert resumed.position == reference.position
        assert resumed.window.to_json() == reference.window.to_json()
        # Alerts fire exactly once across the kill: the two runs' alert
        # streams concatenate to the uninterrupted stream.
        split_alerts = [
            alert
            for outcome in first_outcomes + second_outcomes
            for alert in outcome.alerts
        ]
        ref_alerts = [
            alert for outcome in ref_outcomes for alert in outcome.alerts
        ]
        assert split_alerts == ref_alerts

    def test_resumed_total_matches_the_one_shot_batch_run(
        self, corpus, one_shot, tmp_path, jobs
    ):
        killed = TailMonitor(TailLog(corpus), _config(tmp_path, jobs))
        drive(killed, batches=2)
        resumed = TailMonitor(TailLog(corpus), _config(tmp_path, jobs))
        assert resumed.start(resume=True) is True
        drive(resumed)
        assert summary_to_json(resumed.window.total.summary) == one_shot


class TestJobsInvariance:
    def test_jobs_4_window_is_byte_identical_to_jobs_1(
        self, corpus, tmp_path
    ):
        serial, _ = _uninterrupted(corpus, tmp_path / "serial", 1)
        pooled, _ = _uninterrupted(corpus, tmp_path / "pooled", 4)
        assert pooled.window.to_json() == serial.window.to_json()


class TestPersistedTail:
    def test_segment_chain_replays_the_exact_entry_stream(
        self, corpus, tmp_path
    ):
        from repro.corpusstore import SegmentedCorpusStore

        monitor, _ = _uninterrupted(corpus, tmp_path, 1)
        with SegmentedCorpusStore(tmp_path / "segments") as store:
            assert len(store) == len(corpus.records)
            for i in (0, 1, BATCH - 1, BATCH, len(corpus.records) - 1):
                record = corpus.records[i]
                assert store.der_bytes(i) == record.certificate.to_der()
                assert store.issued_at(i) == record.issued_at
            assert store.digest() == monitor._writer.digest()
