"""Tests for corpus export/import."""

import pytest

from repro.ct import CorpusGenerator
from repro.ct.dataset import export_corpus, load_corpus


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=17, scale=1 / 100000).generate()


class TestRoundtrip:
    def test_export_creates_layout(self, corpus, tmp_path):
        root = export_corpus(corpus, tmp_path / "dataset")
        assert (root / "index.jsonl").exists()
        assert (root / "manifest.json").exists()
        assert list((root / "certs").glob("*.pem"))
        assert list((root / "ca").glob("*.pem"))

    def test_roundtrip_preserves_records(self, corpus, tmp_path):
        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        assert len(loaded.records) == len(corpus.records)
        for original, restored in zip(corpus.records, loaded.records):
            assert restored.issuer_org == original.issuer_org
            assert restored.defect == original.defect
            assert restored.latent == original.latent
            assert restored.issued_at == original.issued_at
            assert (
                restored.certificate.fingerprint()
                == original.certificate.fingerprint()
            )

    def test_roundtrip_preserves_trust_and_cas(self, corpus, tmp_path):
        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        assert loaded.trust_anchors == corpus.trust_anchors
        assert set(loaded.ca_certificates) == set(corpus.ca_certificates)

    def test_loaded_corpus_lints_identically(self, corpus, tmp_path):
        from repro.analysis import lint_corpus

        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        original_reports = lint_corpus(corpus)
        loaded_reports = lint_corpus(loaded)
        assert [sorted(r.fired_lints()) for r in original_reports] == [
            sorted(r.fired_lints()) for r in loaded_reports
        ]

    def test_loaded_chain_verification_works(self, corpus, tmp_path):
        from repro.x509 import build_chain

        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        record = loaded.records[0]
        chain = build_chain(record.certificate, loaded.ca_pool())
        assert chain[-1].is_ca

    def test_unknown_format_rejected(self, tmp_path):
        import json

        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_corpus(bad)
