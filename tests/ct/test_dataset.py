"""Tests for corpus export/import."""

import pytest

from repro.ct import CorpusGenerator
from repro.ct.dataset import export_corpus, load_corpus


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=17, scale=1 / 100000).generate()


class TestRoundtrip:
    def test_export_creates_layout(self, corpus, tmp_path):
        root = export_corpus(corpus, tmp_path / "dataset")
        assert (root / "index.jsonl").exists()
        assert (root / "manifest.json").exists()
        assert list((root / "certs").glob("*.pem"))
        assert list((root / "ca").glob("*.pem"))

    def test_roundtrip_preserves_records(self, corpus, tmp_path):
        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        assert len(loaded.records) == len(corpus.records)
        for original, restored in zip(corpus.records, loaded.records):
            assert restored.issuer_org == original.issuer_org
            assert restored.defect == original.defect
            assert restored.latent == original.latent
            assert restored.issued_at == original.issued_at
            assert (
                restored.certificate.fingerprint()
                == original.certificate.fingerprint()
            )

    def test_roundtrip_preserves_trust_and_cas(self, corpus, tmp_path):
        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        assert loaded.trust_anchors == corpus.trust_anchors
        assert set(loaded.ca_certificates) == set(corpus.ca_certificates)

    def test_loaded_corpus_lints_identically(self, corpus, tmp_path):
        from repro.analysis import lint_corpus

        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        original_reports = lint_corpus(corpus)
        loaded_reports = lint_corpus(loaded)
        assert [sorted(r.fired_lints()) for r in original_reports] == [
            sorted(r.fired_lints()) for r in loaded_reports
        ]

    def test_loaded_chain_verification_works(self, corpus, tmp_path):
        from repro.x509 import build_chain

        root = export_corpus(corpus, tmp_path / "dataset")
        loaded = load_corpus(root)
        record = loaded.records[0]
        chain = build_chain(record.certificate, loaded.ca_pool())
        assert chain[-1].is_ca

    def test_unknown_format_rejected(self, tmp_path):
        import json

        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_corpus(bad)


class TestIntegrityVerification:
    """PR 2 satellite: load_corpus verifies the manifest digests and
    fails loudly on tampered or truncated exports."""

    def test_manifest_records_index_digest(self, corpus, tmp_path):
        import hashlib
        import json

        root = export_corpus(corpus, tmp_path / "dataset")
        manifest = json.loads((root / "manifest.json").read_text())
        digest = hashlib.sha256((root / "index.jsonl").read_bytes()).hexdigest()
        assert manifest["index_sha256"] == digest
        assert manifest["records"] == len(corpus.records)

    def test_tampered_index_fails_loudly(self, corpus, tmp_path):
        from repro.ct.dataset import DatasetIntegrityError

        root = export_corpus(corpus, tmp_path / "dataset")
        index = root / "index.jsonl"
        index.write_text(
            index.read_text().replace('"region": "', '"region": "x", "x": "', 1)
        )
        with pytest.raises(DatasetIntegrityError, match="digest mismatch"):
            load_corpus(root)

    def test_truncated_index_fails_loudly(self, corpus, tmp_path):
        from repro.ct.dataset import DatasetIntegrityError

        root = export_corpus(corpus, tmp_path / "dataset")
        index = root / "index.jsonl"
        lines = index.read_text().splitlines(keepends=True)
        index.write_text("".join(lines[:-1]))
        with pytest.raises(DatasetIntegrityError):
            load_corpus(root)

    def test_tampered_certificate_bytes_fail_loudly(self, corpus, tmp_path):
        import json

        from repro.ct.dataset import DatasetIntegrityError
        from repro.x509.pem import decode_pem, encode_pem

        root = export_corpus(corpus, tmp_path / "dataset")
        first = json.loads((root / "index.jsonl").read_text().splitlines()[0])
        target = root / "certs" / f"{first['fingerprint']}.pem"
        der = bytearray(decode_pem(target.read_text()))
        der[-1] ^= 0xFF  # flip one signature byte; still parseable DER
        target.write_text(encode_pem(bytes(der)))
        with pytest.raises(DatasetIntegrityError, match="hashes to"):
            load_corpus(root)

    def test_record_count_mismatch_fails_loudly(self, corpus, tmp_path):
        import json

        from repro.ct.dataset import DatasetIntegrityError

        root = export_corpus(corpus, tmp_path / "dataset")
        manifest_path = root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["records"] += 1
        # Recompute nothing else: the index digest still matches, so the
        # count check is what must fire.
        manifest_path.write_text(json.dumps(manifest, indent=2))
        with pytest.raises(DatasetIntegrityError, match="promises"):
            load_corpus(root)

    def test_legacy_manifest_without_digest_still_loads(self, corpus, tmp_path):
        import json

        root = export_corpus(corpus, tmp_path / "dataset")
        manifest_path = root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["index_sha256"]
        del manifest["records"]
        manifest_path.write_text(json.dumps(manifest, indent=2))
        loaded = load_corpus(root)
        assert len(loaded.records) == len(corpus.records)
