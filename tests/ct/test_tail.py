"""The simulated CT tail: clock, STH signatures, the get-entries API,
and the monitor's refusal codes when a log misbehaves."""

import datetime as dt

import pytest

from repro.ct import (
    CorpusGenerator,
    MonitorConfig,
    SignedTreeHead,
    SimClock,
    TailLog,
    TailMonitor,
    TailVerificationError,
    drive,
)
from repro.ct.tail import DEFAULT_LOG_KEY, SIM_EPOCH


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=17, scale=0.00001).generate()


class TestSimClock:
    def test_starts_at_the_analysis_epoch(self):
        assert SimClock().now() == SIM_EPOCH

    def test_advance_is_deterministic(self):
        first, second = SimClock(), SimClock()
        for _ in range(5):
            first.advance()
            second.advance()
        assert first.now() == second.now()
        assert first.now() == SIM_EPOCH + dt.timedelta(seconds=5)

    def test_explicit_delta_overrides_the_tick(self):
        clock = SimClock()
        clock.advance(dt.timedelta(hours=2))
        assert clock.now() == SIM_EPOCH + dt.timedelta(hours=2)


class TestSignedTreeHead:
    def test_sign_then_verify(self):
        sth = SignedTreeHead.sign(b"key", 7, SIM_EPOCH, b"\x11" * 32)
        assert sth.verify(b"key")

    def test_wrong_key_fails(self):
        sth = SignedTreeHead.sign(b"key", 7, SIM_EPOCH, b"\x11" * 32)
        assert not sth.verify(b"other-key")

    def test_tampered_root_fails(self):
        sth = SignedTreeHead.sign(b"key", 7, SIM_EPOCH, b"\x11" * 32)
        forged = SignedTreeHead(
            sth.tree_size, sth.timestamp, b"\x22" * 32, sth.signature
        )
        assert not forged.verify(b"key")


class TestTailLog:
    def test_advance_publishes_in_corpus_order(self, corpus):
        log = TailLog(corpus)
        assert log.size == 0
        assert log.backlog == len(corpus.records)
        published = log.advance(10)
        assert published == 10
        assert log.size == 10
        entries = log.get_entries(0, 10)
        for index, entry in enumerate(entries):
            assert entry.index == index
            assert entry.der == corpus.records[index].certificate.to_der()
            assert entry.issued_at == corpus.records[index].issued_at

    def test_advance_clamps_to_the_corpus(self, corpus):
        log = TailLog(corpus)
        total = len(corpus.records)
        assert log.advance(total + 500) == total
        assert log.backlog == 0
        assert log.advance(1) == 0

    def test_get_entries_clamps_to_published_size(self, corpus):
        log = TailLog(corpus)
        log.advance(5)
        assert len(log.get_entries(0, 50)) == 5

    def test_fresh_log_reproduces_the_same_roots(self, corpus):
        """The resume anchor: a new process's log re-derives the exact
        tree, so an old checkpointed root stays verifiable."""
        first, second = TailLog(corpus), TailLog(corpus)
        first.advance(40)
        second.advance(40)
        assert first.sth().root_hash == second.sth().root_hash
        assert first.sth().verify(DEFAULT_LOG_KEY)


class TestMonitorVerification:
    def _verified_monitor(self, corpus):
        monitor = TailMonitor(TailLog(corpus), MonitorConfig(batch_size=32))
        drive(monitor, batches=1)
        return monitor

    def test_bad_signature_is_refused(self, corpus):
        monitor = self._verified_monitor(corpus)
        sth = monitor.log.sth()
        forged = SignedTreeHead.sign(
            b"attacker-key", sth.tree_size, sth.timestamp, sth.root_hash
        )
        with pytest.raises(TailVerificationError) as excinfo:
            monitor._verify_sth(forged)
        assert excinfo.value.code == "bad_sth_signature"

    def test_shrinking_log_is_refused(self, corpus):
        monitor = self._verified_monitor(corpus)
        shrunk = SignedTreeHead.sign(
            monitor.log.key, 1, monitor.log.clock.now(), b"\x00" * 32
        )
        with pytest.raises(TailVerificationError) as excinfo:
            monitor._verify_sth(shrunk)
        assert excinfo.value.code == "shrinking_log"

    def test_equivocating_sth_is_refused(self, corpus):
        monitor = self._verified_monitor(corpus)
        size, _root = monitor._verified_sth
        twin = SignedTreeHead.sign(
            monitor.log.key, size, monitor.log.clock.now(), b"\x00" * 32
        )
        with pytest.raises(TailVerificationError) as excinfo:
            monitor._verify_sth(twin)
        assert excinfo.value.code == "equivocating_sth"

    def test_unprovable_growth_is_refused(self, corpus):
        monitor = self._verified_monitor(corpus)
        size, _root = monitor._verified_sth
        bogus = SignedTreeHead.sign(
            monitor.log.key, size + 8, monitor.log.clock.now(), b"\x00" * 32
        )
        monitor.log.advance(8)
        with pytest.raises(TailVerificationError) as excinfo:
            monitor._verify_sth(bogus)
        assert excinfo.value.code == "inconsistent_sth"

    def test_tampered_entry_fails_inclusion(self, corpus):
        monitor = self._verified_monitor(corpus)
        monitor.log.advance(8)
        sth = monitor.log.sth()
        monitor._verify_sth(sth)
        entries = monitor.log.get_entries(0, 8)
        from repro.ct.tail import TailEntry

        tampered = TailEntry(
            index=entries[3].index,
            der=entries[3].der + b"\x00",
            issued_at=entries[3].issued_at,
        )
        with pytest.raises(TailVerificationError) as excinfo:
            monitor._check_inclusion(tampered, sth)
        assert excinfo.value.code == "bad_inclusion"


class TestPolling:
    def test_idle_poll_returns_none(self, corpus):
        monitor = TailMonitor(TailLog(corpus), MonitorConfig(batch_size=32))
        assert monitor.poll() is None
        monitor.log.advance(32)
        assert monitor.poll() is not None
        assert monitor.poll() is None

    def test_drive_consumes_the_whole_backlog(self, corpus):
        monitor = TailMonitor(TailLog(corpus), MonitorConfig(batch_size=50))
        outcomes = drive(monitor)
        total = len(corpus.records)
        assert monitor.position == total
        assert sum(outcome.count for outcome in outcomes) == total
        assert [outcome.start for outcome in outcomes] == list(
            range(0, total, 50)
        )
        assert monitor.window.entries == total

    def test_drive_respects_the_batch_budget(self, corpus):
        monitor = TailMonitor(TailLog(corpus), MonitorConfig(batch_size=32))
        outcomes = drive(monitor, batches=3)
        assert len(outcomes) == 3
        assert monitor.position == 96
