"""Tests for the calibrated synthetic corpus generator.

These tests run at a tiny scale (1/20000) to stay fast; the benchmark
harness exercises the canonical 1/1000 scale.
"""

import datetime as dt

import pytest

from repro.ct import (
    ANALYSIS_DATE,
    Corpus,
    CorpusGenerator,
    DEFECT_PLAN,
    ISSUERS,
    PAPER_TOTAL_NC,
    PAPER_TOTAL_UNICERTS,
    TrustStatus,
)
from repro.lint import run_lints, summarize

SCALE = 1 / 20000


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return CorpusGenerator(seed=7, scale=SCALE).generate()


@pytest.fixture(scope="module")
def reports(corpus):
    return [run_lints(r.certificate, issued_at=r.issued_at) for r in corpus.records]


class TestCalibration:
    def test_total_close_to_scaled_paper(self, corpus):
        expected = PAPER_TOTAL_UNICERTS * SCALE
        assert abs(len(corpus) - expected) / expected < 0.05

    def test_deterministic(self):
        a = CorpusGenerator(seed=7, scale=1 / 200000).generate()
        b = CorpusGenerator(seed=7, scale=1 / 200000).generate()
        assert [r.issuer_org for r in a.records] == [r.issuer_org for r in b.records]

    def test_nfc_trio_always_planted(self, corpus):
        nfc = [r for r in corpus.records if r.defect == "idn_not_nfc"]
        assert len(nfc) == 3

    def test_issuer_oligopoly(self, corpus):
        by_issuer = corpus.by_issuer()
        top = sorted(by_issuer.values(), key=len, reverse=True)[:10]
        top_share = sum(len(v) for v in top) / len(corpus)
        assert top_share > 0.85  # paper: top-10 = 97.6%

    def test_lets_encrypt_idn_only(self, corpus):
        le = corpus.by_issuer().get("Let's Encrypt", [])
        assert le, "Let's Encrypt must dominate the corpus"
        assert all(r.is_idn or r.defect or r.latent for r in le)


class TestLintingAgreement:
    """Running the real linter over the corpus matches the plants."""

    def test_every_planted_defect_detected(self, corpus, reports):
        missed = [
            record.defect
            for record, report in zip(corpus.records, reports)
            if record.defect and not report.noncompliant
        ]
        assert missed == []

    def test_no_false_positives_on_compliant(self, corpus, reports):
        false_positives = [
            report.fired_lints()
            for record, report in zip(corpus.records, reports)
            if record.defect is None and record.latent is None and report.noncompliant
        ]
        assert false_positives == []

    def test_latent_suppressed_by_effective_dates(self, corpus, reports):
        for record, report in zip(corpus.records, reports):
            if record.latent:
                assert not report.noncompliant
                assert report.noncompliant_ignoring_dates

    def test_nc_rate_near_paper(self, corpus, reports):
        summary = summarize(reports)
        rate = summary.noncompliant / summary.total
        # Paper: 0.72%; small-sample scale tolerance.
        assert 0.002 < rate < 0.03

    def test_ignoring_dates_multiplier(self, corpus, reports):
        # Paper footnote 4: 249K -> 1.8M (a ~7x multiplier).
        summary = summarize(reports)
        multiplier = summary.noncompliant_ignoring_dates / max(summary.noncompliant, 1)
        assert multiplier > 2.5


class TestTrustShares:
    def test_trusted_majority_of_nc(self, corpus, reports):
        nc = [
            record
            for record, report in zip(corpus.records, reports)
            if report.noncompliant
        ]
        trusted = sum(1 for r in nc if r.issuance_trust is TrustStatus.PUBLIC)
        # Paper: 65.3% of NC from publicly trusted CAs.
        assert trusted / len(nc) > 0.40

    def test_overall_trust_rate(self, corpus):
        trusted = sum(1 for r in corpus.records if r.trusted_at_issuance)
        # Paper: 90.1% issued by trusted CA owners.
        assert trusted / len(corpus) > 0.85


class TestValidityPeriods:
    def test_idncerts_mostly_90_days(self, corpus):
        idn = [r for r in corpus.compliant_planted if r.is_idn]
        short = sum(1 for r in idn if r.certificate.validity_days <= 90)
        assert short / len(idn) > 0.80  # paper: 89.6%

    def test_noncompliant_longer_lived(self, corpus):
        nc_days = [r.certificate.validity_days for r in corpus.noncompliant_planted]
        long_lived = sum(1 for d in nc_days if d >= 365)
        assert long_lived / len(nc_days) > 0.30  # paper: ~50%


class TestYears:
    def test_within_study_window(self, corpus):
        for record in corpus.records:
            assert 2012 <= record.issued_at.year <= 2025

    def test_growth_trend(self, corpus):
        from collections import Counter

        years = Counter(r.issued_at.year for r in corpus.compliant_planted)
        assert years[2023] > years[2015]

    def test_latent_predate_their_rules(self, corpus):
        for record in corpus.records:
            if record.latent == "latent_whitespace":
                assert record.issued_at.year <= 2014
            elif record.latent == "latent_smtp_ascii_mailbox":
                assert record.issued_at.year <= 2023


class TestDefectPlanShape:
    def test_plan_matches_table11_total(self):
        named = sum(count for _name, count, _r in DEFECT_PLAN)
        # The named classes cover the bulk of the paper's 249,281.
        assert 0.9 * PAPER_TOTAL_NC < named < 1.5 * PAPER_TOTAL_NC

    def test_issuer_table_covers_table2(self):
        orgs = {spec.org for spec in ISSUERS}
        for expected in (
            "Let's Encrypt",
            "DigiCert Inc",
            "Česká pošta, s.p.",
            "Symantec Corporation",
            "StartCom Ltd.",
            "Government of Korea",
        ):
            assert expected in orgs
