"""Tests for the RFC 6962 Merkle tree."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.ct import MerkleTree, verify_consistency, verify_inclusion
from repro.ct.merkle import leaf_hash, node_hash


def tree_with(count: int) -> MerkleTree:
    tree = MerkleTree()
    for i in range(count):
        tree.append(f"leaf-{i}".encode())
    return tree


class TestRoot:
    def test_empty_root(self):
        assert MerkleTree().root() == hashlib.sha256(b"").digest()

    def test_single_leaf(self):
        tree = tree_with(1)
        assert tree.root() == leaf_hash(b"leaf-0")

    def test_two_leaves(self):
        tree = tree_with(2)
        assert tree.root() == node_hash(leaf_hash(b"leaf-0"), leaf_hash(b"leaf-1"))

    def test_append_changes_root(self):
        tree = tree_with(3)
        before = tree.root()
        tree.append(b"x")
        assert tree.root() != before

    def test_historic_root(self):
        tree = tree_with(5)
        assert tree.root(2) == tree_with(2).root()

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            tree_with(2).root(5)


class TestInclusion:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 64])
    def test_all_indices_verify(self, size):
        tree = tree_with(size)
        root = tree.root()
        for index in range(size):
            proof = tree.inclusion_proof(index)
            assert verify_inclusion(f"leaf-{index}".encode(), index, size, proof, root)

    def test_wrong_leaf_fails(self):
        tree = tree_with(8)
        proof = tree.inclusion_proof(3)
        assert not verify_inclusion(b"forged", 3, 8, proof, tree.root())

    def test_wrong_index_fails(self):
        tree = tree_with(8)
        proof = tree.inclusion_proof(3)
        assert not verify_inclusion(b"leaf-3", 4, 8, proof, tree.root())

    def test_historic_inclusion(self):
        tree = tree_with(10)
        proof = tree.inclusion_proof(2, size=6)
        assert verify_inclusion(b"leaf-2", 2, 6, proof, tree.root(6))


class TestConsistency:
    @pytest.mark.parametrize("old,new", [(1, 2), (2, 5), (3, 8), (4, 4), (6, 13), (8, 64)])
    def test_consistency_verifies(self, old, new):
        tree = tree_with(new)
        proof = tree.consistency_proof(old)
        assert verify_consistency(old, new, tree.root(old), tree.root(), proof)

    def test_tampered_history_fails(self):
        tree = tree_with(8)
        other = MerkleTree()
        for i in range(4):
            other.append(f"other-{i}".encode())
        proof = tree.consistency_proof(4)
        assert not verify_consistency(4, 8, other.root(), tree.root(), proof)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
def test_consistency_property(a, b):
    old, new = sorted((a, b))
    tree = tree_with(new)
    proof = tree.consistency_proof(old)
    assert verify_consistency(old, new, tree.root(old), tree.root(), proof)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=60))
def test_inclusion_property(size):
    tree = tree_with(size)
    root = tree.root()
    for index in (0, size // 2, size - 1):
        proof = tree.inclusion_proof(index)
        assert verify_inclusion(f"leaf-{index}".encode(), index, size, proof, root)
