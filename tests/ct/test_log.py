"""Tests for the CT log simulator."""

import datetime as dt

from repro.ct import CTLog
from repro.x509 import CertificateBuilder, generate_keypair

KEY = generate_keypair(seed=31)


def make_cert(cn: str, precert: bool = False):
    builder = CertificateBuilder().subject_cn(cn).not_before(dt.datetime(2024, 1, 1))
    if precert:
        builder.precertificate()
    return builder.sign(KEY)


class TestSubmission:
    def test_sct_verifies(self):
        log = CTLog(key=b"k1")
        cert = make_cert("a.example.com")
        sct = log.submit(cert)
        assert sct.verify(b"k1", cert.to_der())

    def test_sct_wrong_key_fails(self):
        log = CTLog(key=b"k1")
        cert = make_cert("a.example.com")
        sct = log.submit(cert)
        assert not sct.verify(b"other", cert.to_der())

    def test_size_grows(self):
        log = CTLog()
        for i in range(5):
            log.submit(make_cert(f"host{i}.example.com"))
        assert log.size == 5


class TestPrecertFiltering:
    def test_poison_detected(self):
        log = CTLog()
        log.submit(make_cert("pre.example.com", precert=True))
        log.submit(make_cert("final.example.com"))
        assert len(log.entries()) == 2
        regular = log.entries(include_precerts=False)
        assert len(regular) == 1
        assert regular[0].certificate.subject_common_names == ["final.example.com"]


class TestProofs:
    def test_inclusion_checks(self):
        log = CTLog()
        for i in range(9):
            log.submit(make_cert(f"host{i}.example.com"))
        for index in range(9):
            assert log.check_inclusion(index, log.prove_inclusion(index))

    def test_consistency(self):
        from repro.ct import verify_consistency

        log = CTLog()
        for i in range(4):
            log.submit(make_cert(f"host{i}.example.com"))
        old_root = log.root()
        for i in range(4, 11):
            log.submit(make_cert(f"host{i}.example.com"))
        proof = log.prove_consistency(4)
        assert verify_consistency(4, 11, old_root, log.root(), proof)
