"""Statistical validation of the corpus generator's calibration.

Uses scipy to test that the generator's samples actually follow the
configured marginals (year weights, validity mixes, NC rate) rather
than merely eyeballing counts — the corpus is only a valid stand-in for
the paper's dataset if its distributions are right.
"""

import math

import pytest
from scipy import stats

from repro.ct import CorpusGenerator, PAPER_TOTAL_NC, PAPER_TOTAL_UNICERTS
from repro.ct.corpus import NC_YEAR_WEIGHTS, YEAR_WEIGHTS

SCALE = 1 / 5000  # ~7K records: large enough for distribution tests


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=77, scale=SCALE).generate()


class TestYearDistribution:
    def test_compliant_years_match_weights(self, corpus):
        observed: dict[int, int] = {}
        for record in corpus.compliant_planted:
            observed[record.issued_at.year] = observed.get(record.issued_at.year, 0) + 1
        total = sum(observed.values())
        years = sorted(YEAR_WEIGHTS)
        weight_sum = sum(YEAR_WEIGHTS.values())
        expected = [YEAR_WEIGHTS[y] / weight_sum * total for y in years]
        counts = [observed.get(y, 0) for y in years]
        # Merge tiny-expectation bins (chi-square validity condition).
        merged_obs, merged_exp = [], []
        acc_o = acc_e = 0.0
        for o, e in zip(counts, expected):
            acc_o += o
            acc_e += e
            if acc_e >= 5:
                merged_obs.append(acc_o)
                merged_exp.append(acc_e)
                acc_o = acc_e = 0.0
        if acc_e:
            merged_obs[-1] += acc_o
            merged_exp[-1] += acc_e
        result = stats.chisquare(merged_obs, merged_exp)
        assert result.pvalue > 0.001, f"year distribution drifted: p={result.pvalue:.2g}"

    def test_nc_years_use_nc_weights(self, corpus):
        # NC certs are older-heavy: their mean year is below the
        # compliant mean (the Figure 2 divergence).
        nc_years = [r.issued_at.year for r in corpus.noncompliant_planted]
        ok_years = [r.issued_at.year for r in corpus.compliant_planted]
        assert sum(nc_years) / len(nc_years) < sum(ok_years) / len(ok_years)


class TestNCRate:
    def test_nc_count_within_binomial_interval(self, corpus):
        # The planted NC count should be consistent with the scaled
        # plan as a Poisson-binomial draw (within 5 sigma).
        expected = PAPER_TOTAL_NC * SCALE * 1.35  # plan overshoot factor
        observed = len(corpus.noncompliant_planted)
        sigma = math.sqrt(expected)
        assert abs(observed - expected) < 5 * sigma

    def test_total_within_interval(self, corpus):
        expected = PAPER_TOTAL_UNICERTS * SCALE
        assert abs(len(corpus.records) - expected) / expected < 0.02


class TestValidityDistributions:
    def test_idn_90_day_share_binomial(self, corpus):
        idn = [r for r in corpus.compliant_planted if r.is_idn]
        short = sum(1 for r in idn if r.certificate.validity_days <= 90)
        # Two-sided binomial test against the calibrated 89.6%.
        result = stats.binomtest(short, len(idn), p=0.896)
        assert result.pvalue > 0.001

    def test_nc_long_tail_heavier(self, corpus):
        # Mann-Whitney U: NC validity periods stochastically dominate
        # compliant IDN ones.
        nc_days = [r.certificate.validity_days for r in corpus.noncompliant_planted]
        idn_days = [
            r.certificate.validity_days
            for r in corpus.compliant_planted
            if r.is_idn
        ]
        result = stats.mannwhitneyu(nc_days, idn_days, alternative="greater")
        assert result.pvalue < 1e-6


class TestSeedIndependence:
    def test_two_seeds_same_marginals(self):
        a = CorpusGenerator(seed=1, scale=1 / 20000).generate()
        b = CorpusGenerator(seed=2, scale=1 / 20000).generate()
        rate_a = len(a.noncompliant_planted) / len(a.records)
        rate_b = len(b.noncompliant_planted) / len(b.records)
        assert abs(rate_a - rate_b) < 0.01
