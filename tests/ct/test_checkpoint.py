"""Checkpoint corruption taxonomy: every damage class is a structured
``CheckpointError`` and the monitor's answer is a clean cold start —
never a half-resumed window."""

import json

import pytest

from repro.ct import (
    CheckpointError,
    CorpusGenerator,
    MonitorCheckpoint,
    MonitorConfig,
    TailLog,
    TailMonitor,
    drive,
    load_checkpoint,
    write_checkpoint,
)


@pytest.fixture()
def checkpoint():
    return MonitorCheckpoint(
        position=192,
        tree_size=192,
        root_hash="ab" * 32,
        window={"config": {"index_window": 64, "epoch": "year"}},
        store_digest="cd" * 32,
        alerted_through=1,
    )


class TestRoundTrip:
    def test_write_then_load_preserves_every_field(self, tmp_path, checkpoint):
        path = tmp_path / "monitor.ckpt"
        write_checkpoint(path, checkpoint)
        assert load_checkpoint(path) == checkpoint

    def test_missing_file_is_first_boot_not_an_error(self, tmp_path):
        assert load_checkpoint(tmp_path / "never-written.ckpt") is None

    def test_write_is_atomic_no_tmp_residue(self, tmp_path, checkpoint):
        path = tmp_path / "monitor.ckpt"
        write_checkpoint(path, checkpoint)
        write_checkpoint(path, checkpoint)
        assert [p.name for p in tmp_path.iterdir()] == ["monitor.ckpt"]


class TestTaxonomy:
    def _written(self, tmp_path, checkpoint):
        path = tmp_path / "monitor.ckpt"
        write_checkpoint(path, checkpoint)
        return path

    def test_truncated_file_reports_truncated(self, tmp_path, checkpoint):
        path = self._written(tmp_path, checkpoint)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.code == "truncated"

    def test_non_json_reports_garbled(self, tmp_path):
        path = tmp_path / "monitor.ckpt"
        path.write_text("{this is not json}")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.code == "garbled"

    def test_wrong_format_marker_reports_garbled(self, tmp_path, checkpoint):
        path = self._written(tmp_path, checkpoint)
        document = json.loads(path.read_text())
        document["format"] = "some-other-program"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.code == "garbled"

    def test_flipped_body_field_fails_the_crc(self, tmp_path, checkpoint):
        path = self._written(tmp_path, checkpoint)
        document = json.loads(path.read_text())
        document["body"]["position"] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.code == "garbled"

    def test_missing_body_field_reports_garbled(self, tmp_path, checkpoint):
        path = self._written(tmp_path, checkpoint)
        document = json.loads(path.read_text())
        del document["body"]["sth"]
        import zlib

        canonical = json.dumps(
            document["body"],
            sort_keys=True,
            ensure_ascii=False,
            separators=(",", ":"),
        ).encode()
        document["crc32"] = zlib.crc32(canonical) & 0xFFFFFFFF
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.code == "garbled"

    def test_future_version_reports_bad_version(self, tmp_path, checkpoint):
        path = self._written(tmp_path, checkpoint)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.code == "bad_version"


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=17, scale=0.00001).generate()


def _monitor(corpus, tmp_path, **overrides):
    config = MonitorConfig(
        batch_size=64,
        jobs=1,
        index_window=128,
        checkpoint_path=str(tmp_path / "monitor.ckpt"),
        store_dir=str(tmp_path / "segments"),
        **overrides,
    )
    return TailMonitor(TailLog(corpus), config)


class TestMonitorRecovery:
    """The never-half-resumed guarantee, end to end."""

    def test_stale_digest_when_store_diverged_from_checkpoint(
        self, corpus, tmp_path
    ):
        monitor = _monitor(corpus, tmp_path)
        drive(monitor, batches=2)
        # The store gains a segment the checkpoint never saw (the
        # kill-between-append-and-checkpoint crash shape).
        monitor._writer.append([(b"\x30\x03\x02\x01\x00", None)])
        fresh = _monitor(corpus, tmp_path)
        with pytest.raises(CheckpointError) as excinfo:
            fresh.resume()
        assert excinfo.value.code == "stale_digest"

    def test_window_shape_mismatch_refuses_to_resume(self, corpus, tmp_path):
        monitor = _monitor(corpus, tmp_path)
        drive(monitor, batches=2)
        reshaped = _monitor(corpus, tmp_path, epoch="month")
        with pytest.raises(CheckpointError) as excinfo:
            reshaped.resume()
        assert excinfo.value.code == "garbled"

    @pytest.mark.parametrize(
        "damage, code",
        [
            (lambda p: p.write_bytes(p.read_bytes()[:40]), "truncated"),
            (lambda p: p.write_text('{"format": "nope"}'), "garbled"),
        ],
    )
    def test_start_recovers_with_a_clean_cold_start(
        self, corpus, tmp_path, damage, code
    ):
        monitor = _monitor(corpus, tmp_path)
        drive(monitor, batches=2)
        assert monitor.position == 128
        damage(tmp_path / "monitor.ckpt")

        fresh = _monitor(corpus, tmp_path)
        resumed = fresh.start(resume=True)

        assert resumed is False
        assert fresh.recovered == code
        # Pristine consumer: nothing of the damaged run leaks through.
        assert fresh.position == 0
        assert fresh.window.entries == 0
        assert fresh.window.by_index == {}
        assert list((tmp_path / "segments").glob("segment-*.rcs")) == []

    def test_resume_failure_leaves_state_untouched(self, corpus, tmp_path):
        monitor = _monitor(corpus, tmp_path)
        drive(monitor, batches=2)
        (tmp_path / "monitor.ckpt").write_bytes(b"\x00\x01")

        fresh = _monitor(corpus, tmp_path)
        with pytest.raises(CheckpointError):
            fresh.resume()
        # resume() raised before mutating anything: still a cold state,
        # and the on-disk segments were not reset either.
        assert fresh.position == 0
        assert fresh.window.entries == 0
        assert len(list((tmp_path / "segments").glob("segment-*.rcs"))) == 2

    def test_explicit_cold_start_ignores_a_valid_checkpoint(
        self, corpus, tmp_path
    ):
        monitor = _monitor(corpus, tmp_path)
        drive(monitor, batches=2)

        fresh = _monitor(corpus, tmp_path)
        assert fresh.start(resume=False) is False
        assert fresh.recovered is None
        assert fresh.position == 0
