"""Tests for the table/figure analysis computations (tiny-scale corpus)."""

import pytest

from repro.analysis import (
    build_table1,
    encoding_error_analysis,
    field_matrix,
    find_subject_variants,
    issuance_trend,
    issuer_involvement,
    issuer_table,
    lint_corpus,
    top_lints,
    top_volume_share,
    validity_cdfs,
    variant_strategy_counts,
)
from repro.ct import CorpusGenerator
from repro.lint import NoncomplianceType

SCALE = 1 / 10000


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=11, scale=SCALE).generate()


@pytest.fixture(scope="module")
def reports(corpus):
    return lint_corpus(corpus)


class TestTable1:
    def test_lint_counts_match_registry(self, corpus, reports):
        table = build_table1(corpus, reports)
        row = table.rows[NoncomplianceType.INVALID_ENCODING]
        assert row.lints_total == 48
        assert row.lints_new == 37

    def test_nc_rate_in_paper_band(self, corpus, reports):
        table = build_table1(corpus, reports)
        assert 0.002 < table.nc_rate < 0.025  # paper: 0.72%

    def test_encoding_dominates(self, corpus, reports):
        table = build_table1(corpus, reports)
        enc = table.rows[NoncomplianceType.INVALID_ENCODING].nc_certs
        norm = table.rows[NoncomplianceType.BAD_NORMALIZATION].nc_certs
        assert enc > norm
        assert enc >= max(
            table.rows[t].nc_certs
            for t in (
                NoncomplianceType.ILLEGAL_FORMAT,
                NoncomplianceType.DISCOURAGED_FIELD,
            )
        )

    def test_bad_normalization_is_three(self, corpus, reports):
        table = build_table1(corpus, reports)
        assert table.rows[NoncomplianceType.BAD_NORMALIZATION].nc_certs == 3

    def test_ignoring_dates_grows(self, corpus, reports):
        table = build_table1(corpus, reports)
        assert table.nc_certs_ignoring_dates > 2 * table.nc_certs

    def test_trusted_share_majority(self, corpus, reports):
        table = build_table1(corpus, reports)
        assert table.trusted_share > 0.4  # paper: 65.3%


class TestTable11:
    def test_ranked_descending(self, reports):
        ranked = top_lints(reports)
        counts = [count for _name, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_headline_lints_present(self, reports):
        names = {name for name, _count in top_lints(reports, count=30)}
        assert "w_rfc_ext_cp_explicit_text_not_utf8" in names
        assert "w_cab_subject_common_name_not_in_san" in names


class TestEncodingErrors:
    def test_section51_analysis(self, corpus):
        analysis = encoding_error_analysis(corpus)
        assert analysis.total >= 1
        # CertificatePolicies dominates, as in the paper (5,575 of 7,415).
        assert analysis.in_certificate_policies >= analysis.in_subject
        # Chains reconstruct via AIA; the trusted subset is a subset.
        assert 0 < analysis.trusted_chain <= analysis.total

    def test_subject_encoding_errors_detectable(self):
        # The 150-count subject class rounds to zero at tiny scales, so
        # verify the detector directly on a corpus known to contain one.
        from repro.ct.corpus import CorpusGenerator as CG

        generator = CG(seed=5, scale=1 / 10000)
        corpus = generator.generate()
        spec = next(s for s in __import__("repro.ct.corpus", fromlist=["ISSUERS"]).ISSUERS)
        builder, _idn, _fields = generator._defect_builder(
            "asn1_undecodable_subject", spec, generator._rng
        )
        cert, _when = generator._finalize(builder, spec, 2020, False, True)
        assert any(not attr.decode_ok for attr in cert.subject.attributes())


class TestIssuerTable:
    def test_top10_and_other(self, corpus, reports):
        head, other = issuer_table(corpus, reports)
        assert len(head) <= 10
        assert head[0].noncompliant >= head[-1].noncompliant
        assert other.org == "Other"

    def test_volume_share(self, corpus):
        share = top_volume_share(corpus)
        assert share > 0.85  # paper: 97.6%

    def test_involvement(self, corpus, reports):
        stats = issuer_involvement(corpus, reports)
        assert 0 < stats.nc_orgs <= stats.total_orgs


class TestTrend:
    def test_growth(self, corpus, reports):
        trend = issuance_trend(corpus, reports)
        early = sum(trend.all_unicerts.series(list(range(2012, 2016))))
        late = sum(trend.all_unicerts.series(list(range(2021, 2025))))
        assert late > early

    def test_trusted_tracks_all(self, corpus, reports):
        trend = issuance_trend(corpus, reports)
        shares = trend.trusted_share_per_year()
        recent = [shares[y] for y in (2022, 2023, 2024) if y in shares]
        assert recent and min(recent) > 0.8  # paper: >97.2% recent years

    def test_nc_line_below_all(self, corpus, reports):
        trend = issuance_trend(corpus, reports)
        for year in trend.years:
            assert trend.noncompliant.counts.get(year, 0) <= trend.all_unicerts.counts.get(year, 0)


class TestValidityCDF:
    def test_idn_mostly_90_days(self, corpus, reports):
        curves = validity_cdfs(corpus, reports)
        assert curves["idn"].cdf_at(90) > 0.8  # paper: 89.6%

    def test_noncompliant_longer(self, corpus, reports):
        curves = validity_cdfs(corpus, reports)
        assert curves["noncompliant"].cdf_at(365) < curves["idn"].cdf_at(365)

    def test_other_unicerts_exceed_398(self, corpus, reports):
        curves = validity_cdfs(corpus, reports)
        assert curves["other"].cdf_at(398) < 1.0  # >10.7% exceed 398d

    def test_percentile_monotone(self, corpus, reports):
        curves = validity_cdfs(corpus, reports)
        curve = curves["all"]
        assert curve.percentile(0.25) <= curve.percentile(0.75)


class TestFieldMatrix:
    def test_matrix_builds(self, corpus, reports):
        matrix = field_matrix(corpus, reports, min_certs=10)
        assert matrix.issuers

    def test_idn_only_issuers_have_dns_unicode(self, corpus, reports):
        matrix = field_matrix(corpus, reports, min_certs=10)
        if "Let's Encrypt" in matrix.issuers:
            cell = matrix.cell("Let's Encrypt", "DNSName")
            assert cell.unicode_count > 0

    def test_markers(self, corpus, reports):
        matrix = field_matrix(corpus, reports, min_certs=10)
        markers = {matrix.cell(issuer, col).marker for issuer in matrix.issuers for col in ("DNSName", "O")}
        assert markers & {".", "+"}


class TestVariants:
    def test_variant_pairs_found(self, corpus):
        pairs = find_subject_variants(corpus)
        # The corpus plants whitespace and replacement-char variants of
        # the shared organization pool, so pairs must surface.
        assert pairs

    def test_strategy_counts(self, corpus):
        counts = variant_strategy_counts(find_subject_variants(corpus))
        assert sum(counts.values()) > 0
