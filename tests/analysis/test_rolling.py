"""Rolling figure renderers: the windowed views must re-emit the same
Figure 2/3/4 numbers the batch analysis computes from full reports."""

import pytest

from repro.analysis import (
    issuance_trend,
    render_rolling_fields,
    render_rolling_windows,
    rolling_field_series,
    rolling_trend,
    rolling_validity_cdfs,
    validity_cdfs,
)
from repro.analysis.fields import FIELD_COLUMNS
from repro.ct import CorpusGenerator
from repro.engine import Engine, WindowConfig, WindowedSummary, run_corpus


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=11, scale=0.00001).generate()


@pytest.fixture(scope="module")
def reports(corpus):
    return run_corpus(corpus, jobs=1, collect_reports=True).reports


@pytest.fixture(scope="module")
def windowed(corpus):
    window = WindowedSummary(WindowConfig(index_window=100))
    Engine().run_increment(corpus.records, jobs=1, window=window)
    return window


class TestRollingTrend:
    def test_matches_the_batch_figure_2_lines(self, corpus, reports, windowed):
        batch = issuance_trend(corpus, reports)
        rolling = rolling_trend(windowed)
        years = sorted(batch.all_unicerts.counts)
        assert rolling.years[0] == years[0]
        assert rolling.years[-1] == years[-1]
        assert rolling.all_unicerts.counts == batch.all_unicerts.counts
        assert rolling.noncompliant.counts == batch.noncompliant.counts

    def test_monthly_epochs_aggregate_to_the_same_years(self, corpus):
        window = WindowedSummary(
            WindowConfig(index_window=100, epoch="month")
        )
        Engine().run_increment(corpus.records, jobs=1, window=window)
        yearly = WindowedSummary(WindowConfig(index_window=100))
        Engine().run_increment(corpus.records, jobs=1, window=yearly)
        assert (
            rolling_trend(window).all_unicerts.counts
            == rolling_trend(yearly).all_unicerts.counts
        )


class TestRollingValidity:
    def test_all_curve_matches_the_batch_figure_3_days(
        self, corpus, reports, windowed
    ):
        batch = validity_cdfs(corpus, reports)["all"]
        rolling = rolling_validity_cdfs(windowed)["all"]
        assert sorted(rolling.days) == sorted(
            float(int(days)) for days in batch.days
        )

    def test_window_curves_partition_the_total(self, windowed):
        curves = rolling_validity_cdfs(windowed)
        window_total = sum(
            len(curve.days)
            for key, curve in curves.items()
            if key != "all"
        )
        assert window_total == len(curves["all"].days)
        assert len(curves["all"].days) == windowed.entries


class TestRollingFields:
    def test_series_covers_every_window_and_column(self, windowed):
        series = rolling_field_series(windowed)
        assert [window_id for window_id, _ in series] == (
            windowed.index_windows()
        )
        for _, cells in series:
            assert sorted(cells) == sorted(FIELD_COLUMNS)

    def test_window_counts_sum_to_the_total_counts(self, windowed):
        series = rolling_field_series(windowed)
        for column in FIELD_COLUMNS:
            unicode_sum = sum(cells[column][0] for _, cells in series)
            assert unicode_sum == windowed.total.unicode_fields.get(column, 0)

    def test_unicode_data_is_present_in_the_corpus(self, windowed):
        assert windowed.total.unicode_fields


class TestRenderers:
    def test_rolling_fields_render(self, windowed):
        lines = render_rolling_fields(rolling_field_series(windowed))
        assert lines[0].startswith("Figure 4 (rolling)")
        assert len(lines) == 2 + len(windowed.index_windows())

    def test_rolling_windows_render(self, windowed):
        lines = render_rolling_windows(windowed)
        assert "Per-window noncompliance" in lines[0]
        assert len(lines) == 2 + len(windowed.index_windows())
        for window_id, line in zip(
            windowed.index_windows(), lines[2:]
        ):
            assert line.startswith(f"w{window_id}")
