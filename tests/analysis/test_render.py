"""Tests for the ASCII figure renderers."""

from repro.analysis.longitudinal import IssuanceTrend, ValidityCDF
from repro.analysis.render import render_cdf, render_trend


def make_trend():
    trend = IssuanceTrend()
    for year, count in ((2013, 5), (2018, 500), (2024, 9000)):
        for _ in range(3):
            trend.all_unicerts.counts[year] = count
    trend.noncompliant.counts[2013] = 2
    return trend


class TestTrendRender:
    def test_rows_per_year(self):
        lines = render_trend(make_trend())
        assert len(lines) == 2 + len(IssuanceTrend().years)

    def test_log_scaling_monotone(self):
        lines = render_trend(make_trend())
        bar_2013 = next(l for l in lines if l.startswith("2013")).count("#")
        bar_2024 = next(l for l in lines if l.startswith("2024")).count("#")
        assert bar_2024 > bar_2013 > 0

    def test_zero_year_empty_bar(self):
        lines = render_trend(make_trend())
        row_2012 = next(l for l in lines if l.startswith("2012"))
        assert "#" not in row_2012


class TestCDFRender:
    def make_curves(self):
        return {
            "idn": ValidityCDF("IDNCerts", days=[90.0] * 90 + [365.0] * 10),
            "other": ValidityCDF("other Unicerts", days=[398.0] * 60 + [800.0] * 40),
            "noncompliant": ValidityCDF("noncompliant", days=[700.0] * 50 + [1000.0] * 50),
        }

    def test_plot_shape(self):
        lines = render_cdf(self.make_curves())
        assert lines[0].startswith("Figure 3")
        assert any(line.startswith("100%") for line in lines)
        assert lines[-1].strip().startswith("i=")

    def test_symbols_present(self):
        body = "\n".join(render_cdf(self.make_curves()))
        assert "i" in body and "o" in body and "n" in body

    def test_missing_curve_tolerated(self):
        curves = self.make_curves()
        del curves["other"]
        lines = render_cdf(curves, keys=("idn", "other", "noncompliant"))
        assert lines  # no crash; legend covers available curves only

    def test_empty_curve_tolerated(self):
        curves = self.make_curves()
        curves["idn"] = ValidityCDF("IDNCerts", days=[])
        assert render_cdf(curves)
