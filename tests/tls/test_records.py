"""Tests for the TLS record/handshake substrate."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.tls import (
    ContentType,
    TLSFramingError,
    TLSRecord,
    build_server_flight,
    build_tls13_like_flight,
    decode_certificate_message,
    encode_certificate_message,
    iter_handshake_messages,
    iter_records,
    sniff_certificates,
)
from repro.x509 import Certificate, CertificateBuilder, generate_keypair

KEY = generate_keypair(seed=181)


def make_chain(count=2):
    certs = []
    for i in range(count):
        certs.append(
            CertificateBuilder()
            .subject_cn(f"link{i}.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .sign(KEY)
        )
    return certs


class TestRecordLayer:
    def test_roundtrip(self):
        record = TLSRecord(ContentType.HANDSHAKE, b"payload")
        parsed = list(iter_records(record.encode()))
        assert parsed == [record]

    def test_multiple_records(self):
        stream = (
            TLSRecord(ContentType.HANDSHAKE, b"a").encode()
            + TLSRecord(ContentType.ALERT, b"b").encode()
        )
        parsed = list(iter_records(stream))
        assert [r.content_type for r in parsed] == [
            ContentType.HANDSHAKE,
            ContentType.ALERT,
        ]

    def test_truncated_header(self):
        with pytest.raises(TLSFramingError):
            list(iter_records(b"\x16\x03\x03"))

    def test_truncated_payload(self):
        with pytest.raises(TLSFramingError):
            list(iter_records(b"\x16\x03\x03\x00\x10abc"))

    def test_unknown_content_type(self):
        with pytest.raises(TLSFramingError):
            list(iter_records(b"\x63\x03\x03\x00\x00"))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(TLSFramingError):
            TLSRecord(ContentType.HANDSHAKE, b"x" * 0x4001).encode()


class TestCertificateMessage:
    def test_roundtrip(self):
        chain = make_chain(3)
        message = encode_certificate_message(chain)
        msg_type, body = next(iter_handshake_messages(message))
        assert msg_type == 11
        ders = decode_certificate_message(body)
        assert ders == [cert.to_der() for cert in chain]

    def test_truncated_entry(self):
        with pytest.raises(TLSFramingError):
            decode_certificate_message(b"\x00\x00\x05\x00\x00\x09ab")


class TestSniffer:
    def test_tls12_certificates_visible(self):
        chain = make_chain(2)
        stream = build_server_flight(chain)
        ders = sniff_certificates(stream)
        assert len(ders) == 2
        parsed = Certificate.from_der(ders[0])
        assert parsed.subject_common_names == ["link0.example.com"]

    def test_tls13_certificates_invisible(self):
        # The paper's scope note: certificate-based traffic analysis
        # applies to TLS 1.2 and earlier.
        chain = make_chain(2)
        stream = build_tls13_like_flight(chain)
        assert sniff_certificates(stream) == []

    def test_middlebox_end_to_end(self):
        # Full path: crafted cert -> wire -> sniffer -> Snort rule.
        from repro.asn1.oid import OID_ORGANIZATION_NAME
        from repro.threats import SNORT

        crafted = (
            CertificateBuilder()
            .subject_cn("c2.example.com")
            .subject_attr(OID_ORGANIZATION_NAME, "Evil\x00 Entity")
            .not_before(dt.datetime(2024, 1, 1))
            .sign(KEY)
        )
        stream = build_server_flight([crafted])
        sniffed = Certificate.from_der(sniff_certificates(stream)[0])
        # The NUL variant evades the naive exact-match rule on the wire.
        assert not SNORT.matches_rule(sniffed, "Evil Entity")
        assert SNORT.matches_rule(sniffed, "Evil\x00 Entity")


@settings(max_examples=100)
@given(st.binary(max_size=128))
def test_sniffer_never_crashes_on_garbage(data):
    try:
        sniff_certificates(data)
    except TLSFramingError:
        pass
