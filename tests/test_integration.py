"""End-to-end integration tests across all subsystems.

Each test wires several packages together the way the paper's pipeline
does: CA issuance → CT logging → monitor indexing → linting → analysis,
and crafted certificate → library parsing → threat outcome.
"""

import datetime as dt

import pytest

from repro.analysis import build_table1, lint_corpus
from repro.ct import ALL_MONITORS, CorpusGenerator, CTLog
from repro.lint import run_lints
from repro.tlslibs import ALL_PROFILES, PYOPENSSL, verify_hostname
from repro.x509 import (
    Certificate,
    CertificateBuilder,
    GeneralName,
    build_chain,
    generate_keypair,
    subject_alt_name,
)


class TestIssuanceToMonitoringPipeline:
    """CA issues -> CT log accepts -> monitors index -> owner queries."""

    def test_full_flow(self):
        key = generate_keypair(seed=201)
        log = CTLog(name="pipeline-log")
        monitors = ALL_MONITORS()
        domains = [f"site{i}.example.com" for i in range(5)] + ["xn--mnchen-3ya.de"]
        certs = []
        for domain in domains:
            precert = (
                CertificateBuilder()
                .subject_cn(domain)
                .not_before(dt.datetime(2024, 3, 1))
                .validity_days(90)
                .add_extension(subject_alt_name(GeneralName.dns(domain)))
                .precertificate()
                .sign(key)
            )
            sct = log.submit(precert)
            assert sct.verify(b"sim-log-key", precert.to_der())
            final = (
                CertificateBuilder()
                .subject_cn(domain)
                .not_before(dt.datetime(2024, 3, 1))
                .validity_days(90)
                .add_extension(subject_alt_name(GeneralName.dns(domain)))
                .sign(key)
            )
            log.submit(final)
            certs.append(final)
        # Precert filtering matches the paper's 54.7%-precert filtering step.
        regular = log.entries(include_precerts=False)
        assert len(regular) == len(domains)
        # Monitors index the regular set; owner queries succeed.
        for monitor in monitors:
            for entry in regular:
                monitor.submit(entry.certificate)
            assert monitor.search("xn--mnchen-3ya.de").matches, monitor.name
        # Inclusion proofs hold for every entry.
        for index in range(log.size):
            assert log.check_inclusion(index, log.prove_inclusion(index))

    def test_logged_cert_der_survives_reparse(self):
        key = generate_keypair(seed=202)
        cert = (
            CertificateBuilder()
            .subject_cn("reparse.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .sign(key)
        )
        log = CTLog()
        log.submit(cert)
        reparsed = Certificate.from_der(log.entry(0).certificate.to_der())
        assert reparsed.fingerprint() == cert.fingerprint()


class TestCorpusToAnalysisPipeline:
    """Corpus generation -> real linting -> table computation."""

    def test_small_end_to_end(self):
        corpus = CorpusGenerator(seed=33, scale=1 / 50000).generate()
        reports = lint_corpus(corpus)
        table = build_table1(corpus, reports)
        assert table.total_certs == len(corpus.records)
        assert table.nc_certs >= 3  # the NFC trio at minimum
        # Chain verification works against the emitted CA pool.
        pool = corpus.ca_pool()
        record = corpus.records[0]
        chain = build_chain(record.certificate, pool)
        assert chain[-1].is_ca


class TestCraftedCertAcrossStack:
    """One crafted cert exercises linter, parsers, and hostname checks."""

    def test_bmp_cn_cert(self):
        key = generate_keypair(seed=203)
        from repro.asn1 import BMP_STRING

        crafted = (
            CertificateBuilder()
            .subject_cn("杩瑨畢攮据", spec=BMP_STRING)
            .not_before(dt.datetime(2024, 1, 1))
            .sign(key)
        )
        # The linter flags the encoding violation.
        report = run_lints(crafted)
        assert "e_subject_common_name_not_printable_or_utf8" in report.fired_lints()
        # Libraries disagree on the parsed CN.
        parsed = {p.name: p.common_name(crafted) for p in ALL_PROFILES}
        assert len(set(parsed.values())) > 1
        # And the disagreement is exactly the hostname-bypass surface.
        verdicts = {
            p.name: verify_hostname(p, crafted, "githube.cn").matched
            for p in ALL_PROFILES
        }
        assert any(verdicts.values()) and not all(verdicts.values())

    def test_subfield_forgery_cert(self):
        key = generate_keypair(seed=204)
        crafted = (
            CertificateBuilder()
            .subject_cn("a.com")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(subject_alt_name(GeneralName.dns("a.com, DNS:b.com")))
            .sign(key)
        )
        # Linter: whitespace + bad label characters in the DNSName.
        fired = set(run_lints(crafted).fired_lints())
        assert "e_cab_dns_name_contains_whitespace" in fired
        # PyOpenSSL's text form is forgeable...
        assert PYOPENSSL.san_string(crafted) == "DNS:a.com, DNS:b.com"
        # ...but hostname verification over structured names is not.
        assert not verify_hostname(PYOPENSSL, crafted, "b.com").matched
