"""Tests for the Section 3.2 test-Unicert generator."""

from repro.asn1 import BMP_STRING, IA5_STRING, PRINTABLE_STRING, UTF8_STRING
from repro.asn1.oid import OID_COMMON_NAME, OID_ORGANIZATION_NAME
from repro.testgen import (
    GN_FIELDS,
    SUBJECT_ATTRIBUTE_OIDS,
    TEST_STRING_SPECS,
    TestCertGenerator,
    sample_characters,
)

GEN = TestCertGenerator(seed=3)


class TestSampleCharacters:
    def test_byte_range_complete(self):
        chars = sample_characters(include_blocks=False)
        assert len(chars) == 256
        assert chars[0] == "\x00" and chars[255] == "\xff"

    def test_block_samples_added(self):
        chars = sample_characters()
        assert len(chars) > 256
        assert all(ord(ch) > 0xFF for ch in chars[256:])

    def test_no_surrogates(self):
        assert all(not 0xD800 <= ord(ch) <= 0xDFFF for ch in sample_characters())


class TestAppendixEParameters:
    def test_attribute_oids(self):
        dotted = {oid.dotted for oid in SUBJECT_ATTRIBUTE_OIDS}
        assert "2.5.4.3" in dotted  # CN
        assert "2.5.4.5" in dotted  # serialNumber
        assert "1.2.840.113549.1.9.1" in dotted  # emailAddress
        assert "0.9.2342.19200300.100.1.25" in dotted  # DC
        assert len(SUBJECT_ATTRIBUTE_OIDS) == 9

    def test_string_specs(self):
        names = {spec.name for spec in TEST_STRING_SPECS}
        assert names == {"PrintableString", "UTF8String", "IA5String", "BMPString"}

    def test_gn_fields(self):
        assert GN_FIELDS == ("dns", "rfc822", "uri")


class TestSubjectCases:
    def test_one_rdn_per_attribute(self):
        case = GEN.subject_case(OID_ORGANIZATION_NAME, UTF8_STRING, "中")
        subject = case.certificate.subject
        assert all(len(rdn.attributes) == 1 for rdn in subject.rdns)

    def test_mutated_value_embeds_char(self):
        case = GEN.subject_case(OID_COMMON_NAME, UTF8_STRING, "‮")
        assert "‮" in case.value
        assert case.char_label == "U+202E"

    def test_other_fields_compliant_default(self):
        case = GEN.subject_case(OID_ORGANIZATION_NAME, UTF8_STRING, "Ω")
        assert case.certificate.san_dns_names == ["test.com"]

    def test_declared_spec_on_wire(self):
        case = GEN.subject_case(OID_COMMON_NAME, BMP_STRING, "中")
        attr = case.certificate.subject.attributes()[0]
        assert attr.spec.name == "BMPString"

    def test_control_char_in_printable(self):
        case = GEN.subject_case(OID_COMMON_NAME, PRINTABLE_STRING, "\x01")
        assert "\x01" in case.certificate.subject_common_names[0]


class TestGNCases:
    def test_dns_case(self):
        case = GEN.gn_case("dns", IA5_STRING, "\x00")
        assert case.field == "san:dns"
        san = case.certificate.san
        assert "\x00" in san.names[0].value

    def test_rfc822_case(self):
        case = GEN.gn_case("rfc822", UTF8_STRING, "é")
        assert "é" in case.value
        assert "@" in case.value

    def test_uri_case(self):
        case = GEN.gn_case("uri", IA5_STRING, "~")
        assert case.value.startswith("http://")

    def test_unknown_kind(self):
        import pytest

        with pytest.raises(ValueError):
            GEN.gn_case("x400", IA5_STRING, "a")

    def test_cn_stays_default(self):
        case = GEN.gn_case("dns", UTF8_STRING, "中")
        assert case.certificate.subject_common_names == ["test.com"]


class TestIteration:
    def test_iter_subject_cases_scoped(self):
        chars = ["\x00", "é", "中"]
        cases = list(
            GEN.iter_subject_cases(
                oids=[OID_COMMON_NAME], specs=[UTF8_STRING], chars=chars
            )
        )
        assert len(cases) == 3

    def test_iter_gn_cases_scoped(self):
        cases = list(GEN.iter_gn_cases(kinds=("dns",), specs=[IA5_STRING], chars=["a", "é"]))
        assert len(cases) == 2

    def test_unrepresentable_chars_skipped(self):
        # Astral chars cannot be carried by BMPString.
        cases = list(
            GEN.iter_subject_cases(
                oids=[OID_COMMON_NAME], specs=[BMP_STRING], chars=["\U0001f600", "a"]
            )
        )
        assert len(cases) == 1
