"""Tests for hostname verification over the parser profiles."""

import datetime as dt

from repro.asn1 import BMP_STRING
from repro.tlslibs import GO_CRYPTO, GNUTLS, JAVA_SECURITY_CERT, OPENSSL, PYOPENSSL
from repro.tlslibs.hostname import (
    bmp_cn_bypass_demo,
    match_hostname_pattern,
    verify_hostname,
)
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=101)


def make_cert(cn=None, san=None, cn_spec=None):
    builder = CertificateBuilder().not_before(dt.datetime(2024, 1, 1))
    if cn is not None:
        builder.subject_cn(cn, spec=cn_spec) if cn_spec else builder.subject_cn(cn)
    if san is not None:
        builder.add_extension(
            subject_alt_name(*[GeneralName.dns(name) for name in san])
        )
    return builder.sign(KEY)


class TestPatternMatching:
    def test_exact(self):
        assert match_hostname_pattern("a.example.com", "a.example.com")

    def test_case_insensitive(self):
        assert match_hostname_pattern("A.Example.COM", "a.example.com")

    def test_trailing_dot(self):
        assert match_hostname_pattern("a.example.com.", "a.example.com")

    def test_wildcard_single_label(self):
        assert match_hostname_pattern("*.example.com", "www.example.com")
        assert not match_hostname_pattern("*.example.com", "a.b.example.com")

    def test_wildcard_not_bare_domain(self):
        assert not match_hostname_pattern("*.example.com", "example.com")

    def test_idn_forms_equivalent(self):
        assert match_hostname_pattern("münchen.de", "xn--mnchen-3ya.de")
        assert match_hostname_pattern("xn--mnchen-3ya.de", "münchen.de")

    def test_no_match(self):
        assert not match_hostname_pattern("a.example.com", "b.example.com")


class TestVerifyHostname:
    def test_san_preferred(self):
        cert = make_cert(cn="cn.example.com", san=["san.example.com"])
        verdict = verify_hostname(GNUTLS, cert, "san.example.com")
        assert verdict.matched and verdict.via == "san"
        # CN is ignored when a SAN exists.
        assert not verify_hostname(GNUTLS, cert, "cn.example.com").matched

    def test_cn_fallback(self):
        cert = make_cert(cn="only-cn.example.com")
        verdict = verify_hostname(GNUTLS, cert, "only-cn.example.com")
        assert verdict.matched and verdict.via == "cn"

    def test_cn_fallback_disabled(self):
        cert = make_cert(cn="only-cn.example.com")
        assert not verify_hostname(
            GNUTLS, cert, "only-cn.example.com", allow_cn_fallback=False
        ).matched

    def test_duplicate_cn_profile_dependent(self):
        cert = (
            CertificateBuilder()
            .subject_cn("first.example.com")
            .subject_cn("last.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .sign(KEY)
        )
        assert verify_hostname(PYOPENSSL, cert, "first.example.com").matched
        assert not verify_hostname(PYOPENSSL, cert, "last.example.com").matched
        assert verify_hostname(GO_CRYPTO, cert, "last.example.com").matched


class TestBMPBypass:
    def test_demo_outcomes(self):
        verdicts = bmp_cn_bypass_demo()
        # Compliant UCS-2 decoding sees CJK text: no match.
        assert not verdicts["Golang Crypto"].matched
        # Incompatible ASCII-flattening decoders validate the bypass.
        assert verdicts["Java.security.cert"].matched
        assert verdicts["OpenSSL"].matched

    def test_crafted_cn_bytes(self):
        cert = make_cert(cn="杩瑨畢攮据", cn_spec=BMP_STRING)
        attr = cert.subject.attributes()[0]
        assert attr.raw is None or True  # built, not parsed from raw
        assert BMP_STRING.encode("杩瑨畢攮据").decode("ascii") == "githube.cn"
