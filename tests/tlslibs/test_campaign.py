"""Tests for the differential-testing campaign."""

import pytest

from repro.tlslibs import ALL_PROFILES, GNUTLS, GO_CRYPTO
from repro.tlslibs.campaign import run_campaign


@pytest.fixture(scope="module")
def report():
    # Compact character probe set keeps the test fast while covering
    # controls, Latin-1, CJK, bidi, and zero-width characters.
    return run_campaign()


class TestCampaign:
    def test_cases_generated(self, report):
        assert report.total_cases > 100

    def test_every_library_shows_anomalies(self, report):
        # The paper's RQ2 headline: anomalies in all 9 libraries.
        assert len(report.libraries_with_anomalies()) == 9

    def test_go_parse_failures_on_printable(self, report):
        # Go errors out on out-of-charset PrintableStrings; for the
        # *legal* chars it never fails.
        cell = report.cell("subject:CN", "PrintableString", "Golang Crypto")
        assert cell.cases > 0
        assert cell.parse_failures == 0  # failures counted only for legal chars

    def test_gnutls_silent_acceptance(self, report):
        # GnuTLS accepts out-of-charset characters in PrintableString.
        cell = report.cell("subject:CN", "PrintableString", "GnuTLS")
        assert cell.silent_acceptances > 0

    def test_mismatches_on_bmp(self, report):
        # BMPString cells diverge across libraries (UCS-2 vs ASCII-flat).
        mismatches = sum(
            counts.value_mismatches
            for (field, spec, _lib), counts in report.cells.items()
            if spec == "BMPString"
        )
        assert mismatches > 0

    def test_subset_campaign(self):
        report = run_campaign(profiles=[GNUTLS, GO_CRYPTO], chars=["a", "é", "中"], fields="subject")
        assert report.total_cases > 0
        assert set(lib for (_f, _s, lib) in report.cells) == {"GnuTLS", "Golang Crypto"}

    def test_per_library_aggregation(self, report):
        totals = report.per_library()
        assert len(totals) == 9
        assert all(counts.cases > 0 for counts in totals.values())
