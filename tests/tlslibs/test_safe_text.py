"""Tests for the escaping-correct SAN text representation."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.tlslibs import PYOPENSSL
from repro.tlslibs.safe_text import (
    escape_san_value,
    parse_safe_san_string,
    safe_san_string,
    unescape_san_value,
)
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=221)


def make_cert(*names):
    return (
        CertificateBuilder()
        .subject_cn("ok.example.com")
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(*[GeneralName.dns(n) for n in names]))
        .sign(KEY)
    )


class TestEscaping:
    def test_separators_escaped(self):
        assert escape_san_value("a,b:c") == "a\\,b\\:c"

    def test_controls_hex_escaped(self):
        assert escape_san_value("a\x01b") == "a\\x01b"

    def test_backslash_escaped(self):
        assert escape_san_value("a\\b") == "a\\\\b"

    @given(st.text(alphabet=st.characters(min_codepoint=0x01, max_codepoint=0xFF), max_size=24))
    def test_roundtrip_property(self, value):
        assert unescape_san_value(escape_san_value(value)) == value


class TestForgeryResistance:
    CRAFTED = "a.com, DNS:b.com"

    def test_vulnerable_representation_forged(self):
        crafted = make_cert(self.CRAFTED)
        genuine = make_cert("a.com", "b.com")
        assert PYOPENSSL.san_string(crafted) == PYOPENSSL.san_string(genuine)

    def test_safe_representation_distinguishes(self):
        crafted = make_cert(self.CRAFTED)
        genuine = make_cert("a.com", "b.com")
        assert safe_san_string(crafted) != safe_san_string(genuine)

    def test_safe_roundtrip(self):
        crafted = make_cert(self.CRAFTED)
        pairs = parse_safe_san_string(safe_san_string(crafted))
        assert pairs == [("DNS", self.CRAFTED)]

    def test_genuine_roundtrip(self):
        genuine = make_cert("a.com", "b.com")
        pairs = parse_safe_san_string(safe_san_string(genuine))
        assert pairs == [("DNS", "a.com"), ("DNS", "b.com")]

    def test_no_phantom_entries(self):
        crafted = make_cert(self.CRAFTED)
        pairs = parse_safe_san_string(safe_san_string(crafted))
        assert len(pairs) == 1  # the forged subfield never splits out

    def test_control_char_values_roundtrip(self):
        cert = make_cert("evil\x01name.com")
        pairs = parse_safe_san_string(safe_san_string(cert))
        assert pairs == [("DNS", "evil\x01name.com")]
