"""Tests for the nine TLS-library behaviour models."""

import datetime as dt

import pytest

from repro.asn1 import BMP_STRING, UniversalTag
from repro.tlslibs import (
    ALL_PROFILES,
    CRYPTOGRAPHY,
    FORGE,
    GNUTLS,
    GO_CRYPTO,
    JAVA_SECURITY_CERT,
    NODEJS_CRYPTO,
    OPENSSL,
    PROFILES_BY_NAME,
    PYOPENSSL,
)
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    crl_distribution_points,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=21)
WHEN = dt.datetime(2024, 1, 1)


class TestRegistry:
    def test_nine_profiles(self):
        assert len(ALL_PROFILES) == 9
        assert len(PROFILES_BY_NAME) == 9

    def test_paper_names(self):
        expected = {
            "OpenSSL",
            "GnuTLS",
            "PyOpenSSL",
            "Cryptography",
            "Golang Crypto",
            "Java.security.cert",
            "BouncyCastle",
            "Node.js Crypto",
            "Forge",
        }
        assert set(PROFILES_BY_NAME) == expected


class TestHeadlineBehaviours:
    """The specific quirks the paper calls out by name."""

    def test_forge_utf8_as_latin1(self):
        # "Forge decodes UTF8String with ISO-8859-1".
        raw = "Störi".encode("utf-8")
        outcome = FORGE.decode_dn_attribute(UniversalTag.UTF8_STRING, raw)
        assert outcome.ok
        assert outcome.text == "StÃ¶ri"  # mojibake, as the paper shows

    def test_gnutls_printable_as_utf8(self):
        # "GnuTLS decodes PrintableString with UTF-8".
        raw = "中国".encode("utf-8")
        outcome = GNUTLS.decode_dn_attribute(UniversalTag.PRINTABLE_STRING, raw)
        assert outcome.ok
        assert outcome.text == "中国"

    def test_openssl_hex_escapes(self):
        # OpenSSL's modified decoding: \xHH escape sequences.
        outcome = OPENSSL.decode_dn_attribute(
            UniversalTag.PRINTABLE_STRING, b"test\xff.com"
        )
        assert outcome.ok
        assert outcome.text == "test\\xff.com"

    def test_java_bmp_ascii_compatible(self):
        # Java's BMPString output is ASCII-compatible (incompatible decode).
        raw = BMP_STRING.encode("杩瑨畢攮据")
        outcome = JAVA_SECURITY_CERT.decode_dn_attribute(UniversalTag.BMP_STRING, raw)
        assert outcome.ok
        assert outcome.text == "githube.cn"

    def test_java_replaces_non_ascii_with_fffd(self):
        outcome = JAVA_SECURITY_CERT.decode_dn_attribute(
            UniversalTag.PRINTABLE_STRING, b"caf\xe9"
        )
        assert outcome.text == "caf�"

    def test_go_printable_parse_failure(self):
        # The Section 5.1 availability failure.
        outcome = GO_CRYPTO.decode_dn_attribute(UniversalTag.PRINTABLE_STRING, b"bad@char")
        assert not outcome.ok
        assert "PrintableString contains invalid character" in outcome.error

    def test_pyopenssl_crldp_dot_replacement(self):
        # "http://ssl\x01test.com" -> "http://ssl.test.com".
        outcome = PYOPENSSL.decode_gn(b"http://ssl\x01test.com", context="crldp")
        assert outcome.ok
        assert outcome.text == "http://ssl.test.com"

    def test_pyopenssl_plain_gn_keeps_controls(self):
        outcome = PYOPENSSL.decode_gn(b"http://ssl\x01test.com", context="san")
        assert outcome.text == "http://ssl\x01test.com"


class TestDuplicateCN:
    def _dup_cert(self):
        return (
            CertificateBuilder()
            .subject_cn("first.example.com")
            .subject_cn("last.example.com")
            .not_before(WHEN)
            .sign(KEY)
        )

    def test_pyopenssl_first(self):
        # Paper 4.3.1: PyOpenSSL selects the first CN.
        assert PYOPENSSL.common_name(self._dup_cert()) == "first.example.com"

    def test_go_last(self):
        # Paper 4.3.1: Go Crypto uses the last CN.
        assert GO_CRYPTO.common_name(self._dup_cert()) == "last.example.com"

    def test_no_cn(self):
        cert = (
            CertificateBuilder()
            .subject_attr(
                __import__("repro.asn1.oid", fromlist=["OID_ORGANIZATION_NAME"]).OID_ORGANIZATION_NAME,
                "No CN Here",
            )
            .not_before(WHEN)
            .sign(KEY)
        )
        assert GO_CRYPTO.common_name(cert) is None


class TestCRLUrls:
    def test_pyopenssl_revocation_subversion(self):
        # Full pipeline: crafted CRLDP parses to a *different* URL.
        cert = (
            CertificateBuilder()
            .subject_cn("evil.example.com")
            .not_before(WHEN)
            .add_extension(crl_distribution_points("http://ssl\x01test.com"))
            .sign(KEY)
        )
        assert PYOPENSSL.crl_urls(cert) == ["http://ssl.test.com"]

    def test_gnutls_keeps_url(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(crl_distribution_points("http://crl.example.com/r.crl"))
            .sign(KEY)
        )
        assert GNUTLS.crl_urls(cert) == ["http://crl.example.com/r.crl"]

    def test_unsupported_library_returns_empty(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(crl_distribution_points("http://crl.example.com/r.crl"))
            .sign(KEY)
        )
        assert OPENSSL.crl_urls(cert) == []


class TestSubjectStrings:
    def test_openssl_oneline_injection(self):
        cert = (
            CertificateBuilder()
            .subject_attr(
                __import__("repro.asn1.oid", fromlist=["OID_ORGANIZATION_NAME"]).OID_ORGANIZATION_NAME,
                "acme/CN=evil.com",
            )
            .not_before(WHEN)
            .sign(KEY)
        )
        assert OPENSSL.subject_string(cert) == "/O=acme/CN=evil.com"

    def test_cryptography_escapes(self):
        cert = (
            CertificateBuilder()
            .subject_attr(
                __import__("repro.asn1.oid", fromlist=["OID_ORGANIZATION_NAME"]).OID_ORGANIZATION_NAME,
                "Acme, Inc.",
            )
            .not_before(WHEN)
            .sign(KEY)
        )
        assert CRYPTOGRAPHY.subject_string(cert) == "O=Acme\\, Inc."


class TestSANStrings:
    def test_subfield_forgery_pyopenssl(self):
        crafted = (
            CertificateBuilder()
            .subject_cn("a.com")
            .not_before(WHEN)
            .add_extension(subject_alt_name(GeneralName.dns("a.com, DNS:b.com")))
            .sign(KEY)
        )
        assert PYOPENSSL.san_string(crafted) == "DNS:a.com, DNS:b.com"

    def test_unsupported_san_returns_none(self):
        cert = (
            CertificateBuilder()
            .subject_cn("a.com")
            .not_before(WHEN)
            .add_extension(subject_alt_name(GeneralName.dns("a.com")))
            .sign(KEY)
        )
        assert OPENSSL.san_string(cert) is None
