"""Tests for the Table 12/13 API registry."""

from repro.tlslibs.apis import (
    API_REGISTRY,
    APIS_BY_LIBRARY,
    check_profile_consistency,
    support_matrix,
)


class TestRegistry:
    def test_nine_libraries(self):
        assert len(API_REGISTRY) == 9

    def test_every_library_has_load_and_dn_apis(self):
        for apis in API_REGISTRY:
            assert apis.load
            assert apis.subject and apis.issuer

    def test_openssl_no_extension_apis(self):
        # Table 13: the OpenSSL row is all "-".
        matrix = support_matrix()
        assert not any(matrix["OpenSSL"].values())

    def test_bouncycastle_no_extension_apis(self):
        matrix = support_matrix()
        assert not any(matrix["BouncyCastle"].values())

    def test_cryptography_supports_everything(self):
        matrix = support_matrix()
        assert all(matrix["Cryptography"].values())

    def test_go_san_and_crldp_only(self):
        matrix = support_matrix()
        go = matrix["Golang Crypto"]
        assert go["san"] and go["crldp"]
        assert not go["ian"] and not go["aia"] and not go["sia"]

    def test_paper_api_names(self):
        assert "X509_NAME_oneline()" in APIS_BY_LIBRARY["OpenSSL"].subject
        assert APIS_BY_LIBRARY["PyOpenSSL"].san == "str(get_extension())"
        assert APIS_BY_LIBRARY["Node.js Crypto"].aia == "infoAccess"


class TestConsistency:
    def test_registry_matches_profiles(self):
        # The documentation tables and the executable models must agree
        # on every supported-field cell and version string.
        assert check_profile_consistency() == []
