"""Tests for the Section 3.2 inference engine and differential harness."""

from repro.asn1 import UniversalTag
from repro.tlslibs import (
    ALL_PROFILES,
    CRYPTOGRAPHY,
    CharHandling,
    DecodePractice,
    DecodingMethod,
    FORGE,
    GNUTLS,
    GO_CRYPTO,
    JAVA_SECURITY_CERT,
    NODEJS_CRYPTO,
    OPENSSL,
    PYOPENSSL,
    TABLE4_SCENARIOS,
    Violation,
    classify,
    derive_charcheck_report,
    derive_decoding_matrix,
    infer_decoding,
)


class TestInference:
    def test_gnutls_printable_inferred_utf8(self):
        result = infer_decoding(GNUTLS, UniversalTag.PRINTABLE_STRING, "dn")
        assert result.method is DecodingMethod.UTF_8
        assert result.practice is DecodePractice.OVER_TOLERANT

    def test_forge_utf8_inferred_latin1(self):
        result = infer_decoding(FORGE, UniversalTag.UTF8_STRING, "dn")
        assert result.method is DecodingMethod.ISO_8859_1
        assert result.practice is DecodePractice.INCOMPATIBLE

    def test_openssl_modified(self):
        result = infer_decoding(OPENSSL, UniversalTag.PRINTABLE_STRING, "dn")
        assert result.handling is CharHandling.ESCAPING
        assert result.practice is DecodePractice.MODIFIED

    def test_java_replacement(self):
        result = infer_decoding(JAVA_SECURITY_CERT, UniversalTag.PRINTABLE_STRING, "dn")
        assert result.handling is CharHandling.REPLACEMENT
        assert result.practice is DecodePractice.MODIFIED

    def test_go_compliant(self):
        result = infer_decoding(GO_CRYPTO, UniversalTag.PRINTABLE_STRING, "dn")
        assert result.method is DecodingMethod.ASCII
        assert result.practice is DecodePractice.COMPLIANT

    def test_node_gn_compliant(self):
        result = infer_decoding(NODEJS_CRYPTO, UniversalTag.IA5_STRING, "gn")
        assert result.method is DecodingMethod.ASCII
        assert result.practice is DecodePractice.COMPLIANT

    def test_gnutls_ia5_dn_unsupported(self):
        result = infer_decoding(GNUTLS, UniversalTag.IA5_STRING, "dn")
        assert result.practice is DecodePractice.UNSUPPORTED

    def test_bmp_over_tolerant_utf16(self):
        result = infer_decoding(CRYPTOGRAPHY, UniversalTag.BMP_STRING, "dn")
        assert result.method is DecodingMethod.UTF_16
        assert result.practice is DecodePractice.OVER_TOLERANT


class TestClassify:
    def test_standard_is_compliant(self):
        assert (
            classify(UniversalTag.UTF8_STRING, DecodingMethod.UTF_8, CharHandling.NONE)
            is DecodePractice.COMPLIANT
        )

    def test_ascii_widening_is_over_tolerant(self):
        assert (
            classify(UniversalTag.IA5_STRING, DecodingMethod.ISO_8859_1, CharHandling.NONE)
            is DecodePractice.OVER_TOLERANT
        )

    def test_utf8_narrowing_is_incompatible(self):
        assert (
            classify(UniversalTag.UTF8_STRING, DecodingMethod.ISO_8859_1, CharHandling.NONE)
            is DecodePractice.INCOMPATIBLE
        )

    def test_bmp_as_ascii_is_incompatible(self):
        assert (
            classify(UniversalTag.BMP_STRING, DecodingMethod.ASCII, CharHandling.NONE)
            is DecodePractice.INCOMPATIBLE
        )

    def test_handling_forces_modified(self):
        assert (
            classify(UniversalTag.IA5_STRING, DecodingMethod.ASCII, CharHandling.ESCAPING)
            is DecodePractice.MODIFIED
        )


class TestTable4Matrix:
    def test_full_matrix_derivable(self):
        matrix = derive_decoding_matrix(ALL_PROFILES)
        assert len(matrix.cells) == len(TABLE4_SCENARIOS) * len(ALL_PROFILES)

    def test_headline_cells(self):
        matrix = derive_decoding_matrix(ALL_PROFILES)
        assert (
            matrix.cell("UTF8String in Name", "Forge").practice
            is DecodePractice.INCOMPATIBLE
        )
        assert (
            matrix.cell("PrintableString in Name", "GnuTLS").practice
            is DecodePractice.OVER_TOLERANT
        )
        assert (
            matrix.cell("PrintableString in Name", "OpenSSL").practice
            is DecodePractice.MODIFIED
        )
        assert (
            matrix.cell("IA5String in GN", "OpenSSL").practice
            is DecodePractice.UNSUPPORTED
        )

    def test_every_library_has_some_deviation(self):
        # Paper: anomalies were uncovered in all 9 tested libraries.
        matrix = derive_decoding_matrix(ALL_PROFILES)
        report = derive_charcheck_report(ALL_PROFILES)
        for profile in ALL_PROFILES:
            deviations = [
                cell
                for (scenario, lib), cell in matrix.cells.items()
                if lib == profile.name
                and cell.practice
                in (
                    DecodePractice.OVER_TOLERANT,
                    DecodePractice.INCOMPATIBLE,
                    DecodePractice.MODIFIED,
                )
            ]
            violations = [
                value
                for (row, lib), value in report.cells.items()
                if lib == profile.name
                and value in (Violation.UNEXPLOITED, Violation.EXPLOITED)
            ]
            assert deviations or violations, profile.name

    def test_rows_rendering(self):
        matrix = derive_decoding_matrix(ALL_PROFILES)
        rows = matrix.rows([p.name for p in ALL_PROFILES])
        assert len(rows) == 5
        assert all(len(cells) == 9 for _label, cells in rows)


class TestTable5Report:
    def test_character_violations_everywhere(self):
        # Paper: each library exhibited at least one violation in
        # handling special characters.
        report = derive_charcheck_report(ALL_PROFILES)
        for profile in ALL_PROFILES:
            violations = [
                value
                for (row, lib), value in report.cells.items()
                if lib == profile.name
                and value in (Violation.UNEXPLOITED, Violation.EXPLOITED)
            ]
            assert violations, profile.name

    def test_openssl_dn_escaping_exploited(self):
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("DN RFC4514 Violations", "OpenSSL") == Violation.EXPLOITED

    def test_pyopenssl_gn_escaping_exploited(self):
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("GN RFC4514 Violations", "PyOpenSSL") == Violation.EXPLOITED

    def test_node_gn_escaping_unexploited(self):
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("GN RFC4514 Violations", "Node.js Crypto") == Violation.UNEXPLOITED

    def test_go_printable_properly_rejected(self):
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("PrintableString Violations", "Golang Crypto") == Violation.NONE

    def test_incompatible_bmp_excluded(self):
        # Appendix E (iv): OpenSSL/Java BMP cells are '-'.
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("BMPString Violations", "OpenSSL") == Violation.NOT_TESTED
        assert report.cell("BMPString Violations", "Java.security.cert") == Violation.NOT_TESTED

    def test_structured_dn_libraries_excluded_from_escaping(self):
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("DN RFC2253 Violations", "Golang Crypto") == Violation.NOT_TESTED

    def test_rfc4514_documented_libraries_only_checked_against_4514(self):
        report = derive_charcheck_report(ALL_PROFILES)
        assert report.cell("DN RFC4514 Violations", "Cryptography") == Violation.NONE
        assert report.cell("DN RFC2253 Violations", "Cryptography") == Violation.NOT_TESTED
