"""Tests for IDNA2008 label validation and A/U-label conversion."""

import pytest

from repro.uni import (
    IDNAError,
    alabel_to_ulabel,
    alabel_violations,
    derived_property,
    domain_to_ascii,
    domain_to_unicode,
    is_idn,
    is_valid_ulabel,
    ulabel_to_alabel,
    ulabel_violations,
)


class TestDerivedProperty:
    def test_lowercase_ascii_pvalid(self):
        for ch in "az09-":
            assert derived_property(ord(ch)) == "PVALID"

    def test_uppercase_disallowed(self):
        assert derived_property(ord("A")) == "DISALLOWED"

    def test_symbols_disallowed(self):
        for ch in "@!$ _":
            assert derived_property(ord(ch)) == "DISALLOWED"

    def test_bidi_controls_disallowed(self):
        # U+202E RIGHT-TO-LEFT OVERRIDE: a format (Cf) character.
        assert derived_property(0x202E) == "DISALLOWED"
        assert derived_property(0x200E) == "DISALLOWED"

    def test_zwj_contextj(self):
        assert derived_property(0x200C) == "CONTEXTJ"
        assert derived_property(0x200D) == "CONTEXTJ"

    def test_han_pvalid(self):
        assert derived_property(ord("中")) == "PVALID"

    def test_sharp_s_exception(self):
        assert derived_property(0x00DF) == "PVALID"

    def test_unassigned(self):
        assert derived_property(0x0378) == "UNASSIGNED"

    def test_middle_dot_contexto(self):
        assert derived_property(0x00B7) == "CONTEXTO"


class TestULabelValidation:
    def test_valid_ulabel(self):
        assert is_valid_ulabel("münchen")
        assert is_valid_ulabel("中国")

    def test_uppercase_invalid(self):
        assert any("DISALLOWED" in p for p in ulabel_violations("München"))

    def test_leading_hyphen(self):
        assert any("starts with hyphen" in p for p in ulabel_violations("-münchen"))

    def test_hyphen_34(self):
        assert any("positions 3 and 4" in p for p in ulabel_violations("ab--cü"))

    def test_leading_combining_mark(self):
        assert any("combining mark" in p for p in ulabel_violations("́abcü"))

    def test_nfc_required(self):
        # "é" as e + combining acute is NFD, not NFC.
        assert any("NFC" in p for p in ulabel_violations("café"))

    def test_pure_ascii_not_ulabel(self):
        assert any("pure ASCII" in p for p in ulabel_violations("plain"))

    def test_empty(self):
        assert ulabel_violations("") == ["empty label"]

    def test_bidi_mixed_numerals(self):
        # Arabic letter with both Arabic-Indic and European digits.
        label = "ا٠1"
        assert any("numerals" in p for p in ulabel_violations(label))

    def test_invisible_characters_flagged(self):
        # Zero-width space is DISALLOWED per IDNA2008.
        assert any("U+200B" in p for p in ulabel_violations("ab​ü"))


class TestConversion:
    def test_roundtrip(self):
        alabel = ulabel_to_alabel("münchen")
        assert alabel == "xn--mnchen-3ya"
        assert alabel_to_ulabel(alabel) == "münchen"

    def test_invalid_rejected_on_encode(self):
        with pytest.raises(IDNAError):
            ulabel_to_alabel("ab cd")

    def test_missing_prefix(self):
        with pytest.raises(IDNAError):
            alabel_to_ulabel("mnchen-3ya")

    def test_undeccodable_alabel(self):
        with pytest.raises(IDNAError):
            alabel_to_ulabel("xn--!!!")

    def test_validate_false_skips_checks(self):
        # Decoding a label containing disallowed chars succeeds raw.
        crafted = ulabel_to_alabel("münchen", validate=False)
        assert alabel_to_ulabel(crafted, validate=False) == "münchen"


class TestALabelViolations:
    def test_clean_alabel(self):
        assert alabel_violations("xn--mnchen-3ya") == []

    def test_paper_example_bidi_in_label(self):
        # "xn--www-hn0a" decodes to "‎www" (LRM + www): P1.3 example.
        problems = alabel_violations("xn--www-hn0a")
        assert any("U+200E" in p for p in problems)

    def test_unconvertible(self):
        problems = alabel_violations("xn--999999999")
        assert any("unconvertible" in p for p in problems)

    def test_no_prefix(self):
        assert alabel_violations("plain") == ["missing xn-- prefix"]

    def test_hypercompressed(self):
        # xn-- payload that decodes to pure ASCII.
        problems = alabel_violations("xn--abc-")
        assert problems  # flagged one way or another


class TestDomainHelpers:
    def test_domain_to_unicode(self):
        assert domain_to_unicode("www.xn--mnchen-3ya.de") == "www.münchen.de"

    def test_domain_to_ascii(self):
        assert domain_to_ascii("www.münchen.de") == "www.xn--mnchen-3ya.de"

    def test_is_idn(self):
        assert is_idn("xn--mnchen-3ya.de")
        assert is_idn("münchen.de")
        assert not is_idn("example.com")
