"""Tests for the Table 3 subject-variant strategies."""

import pytest

from repro.uni import (
    VariantStrategy,
    are_identity_equivalent,
    classify_variant_pair,
    generate_variants,
)

# Pairs taken directly from the paper's Table 3.
TABLE3_PAIRS = [
    ("Samco Autotechnik GmbH", "SAMCO Autotechnik GmbH", VariantStrategy.CASE_CONVERSION),
    (
        "NOWOCZESNASTODOŁA.PL SP. Z O.O.",
        "nowoczesnaSTODOŁA.pl sp. z o.o.",
        VariantStrategy.CASE_CONVERSION,
    ),
    ("RWE Energie, s.r.o.", "RWE Energie, a.s.", VariantStrategy.ABBREVIATION),
    (
        "PEDDY SHIELD ",
        "Peddy Shield",
        VariantStrategy.WHITESPACE_VARIATION,
    ),
    (
        "株式会社 中国銀行",
        "株式会社　中国銀行",
        VariantStrategy.WHITESPACE_VARIATION,
    ),
    (
        "Vegas.XXX®™ (VegasLLC)",
        "Vegas.XXX™® (VegasLLC)",
        VariantStrategy.RESEMBLING_SUBSTITUTION,
    ),
    ("St�ri AG", "Störi AG", VariantStrategy.ILLEGAL_REPLACEMENT),
]


class TestClassification:
    @pytest.mark.parametrize("a,b,expected", TABLE3_PAIRS)
    def test_table3_pairs(self, a, b, expected):
        assert classify_variant_pair(a, b) == expected

    def test_identical_is_none(self):
        assert classify_variant_pair("Acme", "Acme") is None

    def test_unrelated_is_none(self):
        assert classify_variant_pair("Acme Corp", "Globex Inc") is None

    def test_nonprintable_addition(self):
        assert (
            classify_variant_pair("Evil Entity", "Evil\x00 Entity")
            == VariantStrategy.NON_PRINTABLE_ADDITION
        )

    def test_symmetric(self):
        for a, b, _ in TABLE3_PAIRS:
            assert (classify_variant_pair(a, b) is None) == (
                classify_variant_pair(b, a) is None
            )

    def test_country_name_case(self):
        assert classify_variant_pair("GERMANY", "Germany") == VariantStrategy.CASE_CONVERSION


class TestEquivalence:
    def test_equivalent(self):
        assert are_identity_equivalent("Acme Inc", "ACME INC")

    def test_not_equivalent(self):
        assert not are_identity_equivalent("Acme Inc", "Other LLC")

    def test_reflexive(self):
        assert are_identity_equivalent("x", "x")


class TestGeneration:
    def test_generated_variants_classify_back(self):
        subject = "Evil Entity Ltd"
        for strategy, variant in generate_variants(subject).items():
            assert variant != subject
            got = classify_variant_pair(subject, variant)
            assert got is not None, (strategy, variant)

    def test_case_variant_present(self):
        variants = generate_variants("Acme Corp")
        assert VariantStrategy.CASE_CONVERSION in variants

    def test_whitespace_variant_present(self):
        variants = generate_variants("Acme Corp")
        assert VariantStrategy.WHITESPACE_VARIATION in variants

    def test_all_strategies_possible(self):
        variants = generate_variants("peddy shield co")
        assert len(variants) >= 4
