"""Tests for DNS LDH syntax checks (RFC 1034 / RFC 5890)."""

import pytest

from repro.uni import (
    is_ldh_label,
    is_reserved_ldh_label,
    is_valid_dns_name,
    is_xn_label,
    label_violations,
    name_violations,
)


class TestLabels:
    def test_valid(self):
        assert is_ldh_label("example")
        assert is_ldh_label("a1-b2")
        assert is_ldh_label("x" * 63)

    def test_empty(self):
        assert label_violations("") == ["empty label"]

    def test_too_long(self):
        assert any("63" in p for p in label_violations("x" * 64))

    def test_bad_characters(self):
        assert any("non-LDH" in p for p in label_violations("under_score"))
        assert any("non-LDH" in p for p in label_violations("spa ce"))
        assert any("non-LDH" in p for p in label_violations("ünïcode"))

    def test_hyphen_edges(self):
        assert any("starts with hyphen" in p for p in label_violations("-lead"))
        assert any("ends with hyphen" in p for p in label_violations("trail-"))

    def test_underscore_allowance(self):
        assert label_violations("_dmarc", allow_underscore=True) == []

    def test_reserved_ldh(self):
        assert is_reserved_ldh_label("xn--abc")
        assert is_reserved_ldh_label("ab--cd")
        assert not is_reserved_ldh_label("abc")

    def test_xn_detection(self):
        assert is_xn_label("xn--mnchen-3ya")
        assert is_xn_label("XN--MNCHEN-3YA")
        assert not is_xn_label("example")


class TestNames:
    def test_valid(self):
        assert is_valid_dns_name("www.example.com")
        assert is_valid_dns_name("*.example.com")
        assert is_valid_dns_name("example.com.")  # trailing dot tolerated

    def test_wildcard_rejected_when_disallowed(self):
        assert not is_valid_dns_name("*.example.com", allow_wildcard=False)

    def test_empty(self):
        assert name_violations("") == ["empty name"]

    def test_too_long(self):
        name = ".".join(["a" * 60] * 5)
        assert any("253" in p for p in name_violations(name))

    def test_empty_interior_label(self):
        assert any("empty label" in p for p in name_violations("a..b.com"))

    def test_violations_name_label_position(self):
        problems = name_violations("ok.bad_label.com")
        assert any("label 2" in p for p in problems)
