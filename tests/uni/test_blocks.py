"""Tests for the Unicode block registry."""

import unicodedata

from repro.uni import BLOCKS, block_by_name, block_of, sample_block_characters


class TestRegistry:
    def test_substantial_coverage(self):
        # The curated registry carries the BMP plus major SMP blocks.
        assert len(BLOCKS) >= 280

    def test_sorted_and_disjoint(self):
        for prev, cur in zip(BLOCKS, BLOCKS[1:]):
            assert prev.end < cur.start

    def test_ranges_within_unicode(self):
        for block in BLOCKS:
            assert 0 <= block.start <= block.end <= 0x10FFFF

    def test_block_of_basic_latin(self):
        assert block_of("a").name == "Basic Latin"
        assert block_of(0x41).name == "Basic Latin"

    def test_block_of_cjk(self):
        assert block_of("中").name == "CJK Unified Ideographs"

    def test_block_of_gap(self):
        # 0x2FE0-0x2FEF is an unallocated gap between blocks.
        assert block_of(0x2FE5) is None

    def test_block_by_name(self):
        block = block_by_name("Cyrillic")
        assert block.start == 0x0400

    def test_contains(self):
        block = block_by_name("Hebrew")
        assert "א" in block
        assert "a" not in block

    def test_surrogate_flags(self):
        assert block_by_name("High Surrogates").is_surrogate
        assert not block_by_name("Hebrew").is_surrogate

    def test_private_use_flags(self):
        assert block_by_name("Private Use Area").is_private_use


class TestSampling:
    def test_excludes_surrogates(self):
        samples = sample_block_characters()
        assert all(not 0xD800 <= ord(ch) <= 0xDFFF for ch in samples)

    def test_samples_are_assigned_or_private(self):
        for ch in sample_block_characters():
            category = unicodedata.category(ch)
            assert category != "Cn" or block_of(ch).is_private_use

    def test_one_per_block_at_most(self):
        samples = sample_block_characters()
        blocks = [block_of(ch).name for ch in samples]
        assert len(blocks) == len(set(blocks))

    def test_count_close_to_paper(self):
        # The paper samples 323 blocks; our curated registry is close.
        assert len(sample_block_characters()) >= 250

    def test_exclude_private_use(self):
        samples = sample_block_characters(exclude_private_use=True)
        assert all(not block_of(ch).is_private_use for ch in samples)
