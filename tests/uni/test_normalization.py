"""Tests for NFC checks and whitespace canonicalization."""

from hypothesis import given, strategies as st

from repro.uni import (
    canonical_whitespace,
    case_fold_equal,
    has_alternate_whitespace,
    is_nfc,
    nfc,
    nfc_violations,
)


class TestNFC:
    def test_composed_is_nfc(self):
        assert is_nfc("café")

    def test_decomposed_is_not_nfc(self):
        assert not is_nfc("café")

    def test_nfc_composes(self):
        assert nfc("café") == "café"

    def test_violations_empty_for_nfc(self):
        assert nfc_violations("Île-de-France") == []

    def test_violations_describe_position(self):
        problems = nfc_violations("Île")
        assert problems and "U+" in problems[0]

    @given(st.text(max_size=30))
    def test_nfc_idempotent(self, text):
        assert nfc(nfc(text)) == nfc(text)


class TestCaseFold:
    def test_simple(self):
        assert case_fold_equal("GERMANY", "germany")

    def test_sharp_s(self):
        assert case_fold_equal("STRASSE", "straße")

    def test_different(self):
        assert not case_fold_equal("DE", "FR")


class TestWhitespace:
    def test_detects_nbsp(self):
        assert has_alternate_whitespace("PEDDY SHIELD")

    def test_detects_ideographic_space(self):
        assert has_alternate_whitespace("株式会社　中国銀行")

    def test_plain_space_ok(self):
        assert not has_alternate_whitespace("Plain Name")

    def test_canonicalization(self):
        assert canonical_whitespace("株式会社　中国銀行") == "株式会社 中国銀行"

    def test_collapses_runs(self):
        assert canonical_whitespace("a    b") == "a b"

    def test_strips_edges(self):
        assert canonical_whitespace(" name ") == "name"
