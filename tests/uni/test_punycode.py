"""Tests for the from-scratch RFC 3492 Punycode implementation."""

import pytest
from hypothesis import given, strategies as st

from repro.uni import PunycodeError, punycode

# RFC 3492 Section 7.1 sample strings (subset) plus IDN examples.
RFC_SAMPLES = [
    # (unicode, punycode)
    ("ünchen", "nchen-jva"),  # sanity: partial basic string
    ("münchen", "mnchen-3ya"),
    ("bücher", "bcher-kva"),
    ("中国", "fiqs8s"),
    ("中國", "fiqz9s"),
    ("日本語", "wgv71a119e"),
    ("한국", "3e0b707e"),
    ("ελληνικά", "hxargifdar"),
    ("россия", "h1alffa9f"),
    ("königsgäßchen", "knigsgchen-b4a3dun"),
    ("ليهمابتكلموشعربي؟", "egbpdaj6bu4bxfgehfvwxn"),
]


class TestEncode:
    @pytest.mark.parametrize("unicode_text,expected", RFC_SAMPLES)
    def test_known_vectors(self, unicode_text, expected):
        assert punycode.encode(unicode_text) == expected

    def test_pure_ascii(self):
        # Pure-ASCII input yields the text plus a trailing delimiter.
        assert punycode.encode("abc") == "abc-"

    def test_empty(self):
        assert punycode.encode("") == ""

    def test_surrogate_rejected(self):
        with pytest.raises(PunycodeError):
            punycode.encode("\ud800")

    def test_case_preserved_in_basic(self):
        encoded = punycode.encode("München")
        assert encoded.startswith("Mnchen-")


class TestDecode:
    @pytest.mark.parametrize("unicode_text,expected", RFC_SAMPLES)
    def test_known_vectors(self, unicode_text, expected):
        assert punycode.decode(expected) == unicode_text

    def test_non_ascii_input_rejected(self):
        with pytest.raises(PunycodeError):
            punycode.decode("münchen")

    def test_invalid_digit_rejected(self):
        with pytest.raises(PunycodeError):
            punycode.decode("abc-!!")

    def test_truncated_integer_rejected(self):
        # A trailing digit that starts but never ends an integer.
        with pytest.raises(PunycodeError):
            punycode.decode("abc-z")

    def test_overflow_rejected(self):
        with pytest.raises(PunycodeError):
            punycode.decode("99999999999999999999a")

    def test_malformed_examples_from_paper(self):
        # The paper's F1 finding: syntactically valid xn-- labels whose
        # payload cannot convert back to Unicode.
        for payload in ("zzzzzzzzzz9999999999", "ab-c-d-9z"):
            try:
                punycode.decode(payload)
            except PunycodeError:
                pass  # Either outcome is fine; it must never crash.

    def test_leading_delimiter(self):
        # "-" alone has an empty basic part and no extended part.
        assert punycode.decode("-") == ""


class TestRoundtrip:
    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30))
    def test_roundtrip_property(self, text):
        assert punycode.decode(punycode.encode(text)) == text

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", max_size=24))
    def test_decode_never_crashes_unexpectedly(self, text):
        # Arbitrary LDH strings either decode or raise PunycodeError.
        try:
            decoded = punycode.decode(text)
        except PunycodeError:
            return
        assert isinstance(decoded, str)

    def test_insertion_order(self):
        # Multiple non-basic chars interleaved with basic ones.
        text = "aβcδe"
        assert punycode.decode(punycode.encode(text)) == text

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30))
    def test_differential_against_stdlib(self, text):
        # Python's built-in punycode codec is an independent oracle.
        assert punycode.encode(text) == text.encode("punycode").decode("ascii")


class TestEdgeCases:
    """RFC 3492 corner cases: empty input, all-basic labels, delimiter
    placement, and the §6.4 overflow guards."""

    def test_empty_round_trip(self):
        assert punycode.encode("") == ""
        assert punycode.decode("") == ""

    def test_all_basic_trailing_delimiter(self):
        # §3.1: a nonempty basic string always gets a delimiter, even
        # with no extended part; the decoder must strip exactly one.
        assert punycode.encode("abc") == "abc-"
        assert punycode.decode("abc-") == "abc"

    def test_basic_string_ending_in_hyphen(self):
        # "abc-" encodes to "abc--"; only the *last* delimiter splits.
        assert punycode.encode("abc-") == "abc--"
        assert punycode.decode("abc--") == "abc-"

    def test_delimiter_only_strings(self):
        assert punycode.decode("-") == ""
        assert punycode.decode("--") == "-"

    def test_leading_delimiter_empty_basic(self):
        # "-fiqs8s": empty basic string, extended part "fiqs8s"? No —
        # rfind picks delimiter 0, so extended is everything after it.
        assert punycode.decode("-" + "fiqs8s") == punycode.decode("fiqs8s")

    def test_encode_overflow_guard(self):
        # Enough basic prefix makes delta exceed the 31-bit ceiling on
        # the first extended code point (§6.4).
        with pytest.raises(PunycodeError):
            punycode.encode("\x80" * 3000 + "\U0010FFFF")

    def test_decode_weight_overflow_guard(self):
        # '9' (digit 35) never terminates the varint, so w and i grow
        # geometrically and must trip a §6.4 pre-multiplication guard.
        with pytest.raises(PunycodeError, match="overflow"):
            punycode.decode("9" * 12)

    def test_decode_nonterminating_low_digits_truncate(self):
        # 'z' (digit 25) terminates once t saturates at TMAX=26, so an
        # all-z string exhausts input instead: truncated varint, no wrap.
        with pytest.raises(PunycodeError):
            punycode.decode("z" * 20)

    def test_decode_accumulator_overflow_guard(self):
        with pytest.raises(PunycodeError):
            punycode.decode("99999999999999999999999999999a")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", max_size=12))
    def test_all_basic_round_trip_property(self, text):
        encoded = punycode.encode(text)
        if text:
            assert encoded == text + "-"
        assert punycode.decode(encoded) == text

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30))
    def test_decode_differential_against_stdlib(self, text):
        # Differential harness, decode direction: stdlib encodes, we
        # must decode back to the identical string.
        encoded = text.encode("punycode").decode("ascii")
        assert punycode.decode(encoded) == text
