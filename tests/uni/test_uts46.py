"""Tests for UTS #46 compatibility preprocessing."""

import pytest

from repro.uni.errors import IDNAError
from repro.uni.uts46 import to_ascii, uts46_remap, uts46_violations


class TestRemap:
    def test_lowercasing(self):
        assert uts46_remap("MÜNCHEN.DE") == "münchen.de"

    def test_fullwidth_folding(self):
        assert uts46_remap("ｅｘａｍｐｌｅ.com") == "example.com"

    def test_ideographic_full_stop(self):
        assert uts46_remap("例子。com") == "例子.com"

    def test_ignored_codepoints_deleted(self):
        assert uts46_remap("exam­ple.com") == "example.com"  # SOFT HYPHEN
        assert uts46_remap("exam​ple.com") == "example.com"  # ZWSP

    def test_ligature_folding(self):
        assert uts46_remap("oﬃce.com") == "office.com"

    def test_transitional_sharp_s(self):
        assert uts46_remap("straße.de", transitional=True) == "strasse.de"
        assert uts46_remap("straße.de", transitional=False) == "straße.de"

    def test_transitional_zwj_deleted(self):
        assert uts46_remap("a‍bc", transitional=True) == "abc"

    def test_idempotent(self):
        once = uts46_remap("ＭÜnchen。ＤＥ")
        assert uts46_remap(once) == once


class TestViolations:
    def test_clean(self):
        assert uts46_violations("münchen.de") == []

    def test_space_disallowed(self):
        assert uts46_violations("bad domain.com")

    def test_control_disallowed(self):
        assert uts46_violations("bad\x01.com")

    def test_disallowed_symbol_in_label(self):
        assert uts46_violations("smiley☺.com")


class TestToASCII:
    def test_basic(self):
        assert to_ascii("MÜNCHEN.DE") == "xn--mnchen-3ya.de"

    def test_ascii_passthrough(self):
        assert to_ascii("plain.example.com") == "plain.example.com"

    def test_fullwidth_to_ascii(self):
        assert to_ascii("ｅｘａｍｐｌｅ.com") == "example.com"

    def test_transitional_differs(self):
        assert to_ascii("faß.de", transitional=True) == "fass.de"
        assert to_ascii("faß.de", transitional=False).startswith("xn--")

    def test_invalid_raises(self):
        with pytest.raises(IDNAError):
            to_ascii("bad domain.com")
