"""Tests for confusable skeletons and invisible-character detection."""

from repro.uni import (
    has_bidi_control,
    has_invisible,
    is_confusable,
    mixed_script_confusable,
    skeleton,
)


class TestSkeleton:
    def test_cyrillic_paypal(self):
        assert skeleton("раураl") == "paypal"

    def test_fullwidth_folds(self):
        assert skeleton("ｐａｙｐａｌ") == "paypal"

    def test_case_folds(self):
        assert skeleton("PayPal") == "paypal"

    def test_invisible_stripped(self):
        assert skeleton("pay​pal") == "paypal"

    def test_accents_removed(self):
        assert skeleton("pâypal") == "paypal"

    def test_trademark_expansion(self):
        assert skeleton("Vegas™") == skeleton("VegasTM")


class TestConfusable:
    def test_homograph_domains(self):
        assert is_confusable("paypal.com", "раураl.com")

    def test_identical_not_confusable(self):
        assert not is_confusable("a.com", "a.com")

    def test_unrelated(self):
        assert not is_confusable("a.com", "b.org")

    def test_greek_question_mark(self):
        # Paper G1.2: U+037E renders like a semicolon.
        assert skeleton("a;b") == skeleton("a;b")


class TestInvisible:
    def test_zwsp(self):
        assert has_invisible("www​.com")

    def test_word_joiner(self):
        assert has_invisible("a⁠b")

    def test_plain(self):
        assert not has_invisible("plain.com")

    def test_bidi_override(self):
        assert has_bidi_control("www.‮lapyap‬.com")

    def test_lrm(self):
        assert has_bidi_control("‎www")


class TestMixedScript:
    def test_latin_cyrillic_mix(self):
        assert mixed_script_confusable("gооgle")  # Cyrillic о

    def test_pure_latin(self):
        assert not mixed_script_confusable("google")

    def test_pure_cyrillic(self):
        assert not mixed_script_confusable("яндекс")
