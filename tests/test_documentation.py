"""Documentation-coverage gates: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.asn1",
    "repro.uni",
    "repro.x509",
    "repro.lint",
    "repro.tlslibs",
    "repro.fuzz",
    "repro.testgen",
    "repro.tls",
    "repro.ct",
    "repro.threats",
    "repro.analysis",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name == "__main__":
                    continue  # importing it executes the CLI
                yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize(
    "module", list(iter_modules()), ids=lambda m: m.__name__
)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_public_classes_and_functions_documented():
    undocumented = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their source
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented[:20]}"
