"""Tests for the certificate builder, codec, and accessors."""

import datetime as dt

import pytest

from repro.asn1 import BMP_STRING, PRINTABLE_STRING, TELETEX_STRING, UTF8_STRING
from repro.asn1.oid import (
    OID_AD_CA_ISSUERS,
    OID_COMMON_NAME,
    OID_COUNTRY_NAME,
    OID_CP_DOMAIN_VALIDATED,
    OID_ORGANIZATION_NAME,
    OID_QT_UNOTICE,
)
from repro.x509 import (
    AccessDescription,
    Certificate,
    CertificateBuilder,
    GeneralName,
    Name,
    PolicyInformation,
    PolicyQualifier,
    UserNotice,
    authority_info_access,
    basic_constraints,
    certificate_policies,
    crl_distribution_points,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=42)


def build_simple(**kwargs):
    builder = (
        CertificateBuilder()
        .serial(kwargs.get("serial", 7))
        .subject_attr(OID_COUNTRY_NAME, "DE", PRINTABLE_STRING)
        .subject_cn(kwargs.get("cn", "test.example.com"))
        .add_extension(subject_alt_name(GeneralName.dns(kwargs.get("cn", "test.example.com"))))
    )
    return builder.sign(KEY)


class TestBuilderBasics:
    def test_roundtrip_through_der(self):
        cert = build_simple()
        reparsed = Certificate.from_der(cert.to_der())
        assert reparsed.serial == 7
        assert reparsed.subject_common_names == ["test.example.com"]
        assert reparsed.san_dns_names == ["test.example.com"]

    def test_self_signed_by_default(self):
        cert = build_simple()
        assert cert.is_self_issued

    def test_explicit_issuer(self):
        issuer = Name.build([(OID_ORGANIZATION_NAME, "Test CA")])
        cert = CertificateBuilder().subject_cn("x").issuer_name(issuer).sign(KEY)
        assert cert.issuer.get(OID_ORGANIZATION_NAME) == ["Test CA"]
        assert not cert.is_self_issued

    def test_validity(self):
        start = dt.datetime(2024, 3, 1)
        cert = (
            CertificateBuilder()
            .subject_cn("x")
            .not_before(start)
            .validity_days(398)
            .sign(KEY)
        )
        assert cert.not_before == start
        assert cert.validity_days == pytest.approx(398)
        assert cert.is_valid_at(start + dt.timedelta(days=100))
        assert not cert.is_valid_at(start + dt.timedelta(days=500))

    def test_signature_verifies(self):
        cert = build_simple()
        assert cert.public_key is not None
        assert cert.public_key.verify(cert.tbs_der, cert.signature)

    def test_fingerprint_stable(self):
        cert = build_simple()
        assert cert.fingerprint() == Certificate.from_der(cert.to_der()).fingerprint()


class TestMalformedCrafting:
    def test_duplicate_cn(self):
        cert = (
            CertificateBuilder().subject_cn("first").subject_cn("second").sign(KEY)
        )
        assert cert.subject_common_names == ["first", "second"]
        assert cert.subject.has_duplicates(OID_COMMON_NAME)

    def test_control_chars_in_cn(self):
        cert = CertificateBuilder().subject_cn("evil\x00entity").sign(KEY)
        assert "\x00" in cert.subject_common_names[0]

    def test_bmp_encoded_cn(self):
        cert = CertificateBuilder().subject_cn("中国", spec=BMP_STRING).sign(KEY)
        attr = cert.subject.attributes()[0]
        assert attr.spec.name == "BMPString"
        assert attr.value == "中国"

    def test_teletex_cn(self):
        cert = CertificateBuilder().subject_cn("Störi AG", spec=TELETEX_STRING).sign(KEY)
        assert cert.subject.attributes()[0].spec.name == "TeletexString"

    def test_raw_invalid_utf8(self):
        cert = (
            CertificateBuilder()
            .subject_attr(OID_COMMON_NAME, "", UTF8_STRING, raw=b"\xff\xfe")
            .sign(KEY)
        )
        assert not cert.subject.attributes()[0].decode_ok

    def test_printable_with_at_sign(self):
        # Charset violation carried through the lenient encoder.
        cert = CertificateBuilder().subject_cn("user@host", spec=PRINTABLE_STRING).sign(KEY)
        attr = cert.subject.attributes()[0]
        assert attr.spec.name == "PrintableString"
        assert attr.value == "user@host"


class TestExtensions:
    def test_precertificate(self):
        cert = CertificateBuilder().subject_cn("x").precertificate().sign(KEY)
        assert cert.is_precertificate
        assert not build_simple().is_precertificate

    def test_basic_constraints(self):
        cert = (
            CertificateBuilder()
            .subject_cn("CA")
            .add_extension(basic_constraints(ca=True, path_len=1))
            .sign(KEY)
        )
        assert cert.is_ca

    def test_aia(self):
        cert = (
            CertificateBuilder()
            .subject_cn("x")
            .add_extension(
                authority_info_access(
                    AccessDescription(
                        OID_AD_CA_ISSUERS, GeneralName.uri("http://ca.example/ca.crt")
                    )
                )
            )
            .sign(KEY)
        )
        assert cert.ca_issuer_urls == ["http://ca.example/ca.crt"]

    def test_crl_distribution_points(self):
        cert = (
            CertificateBuilder()
            .subject_cn("x")
            .add_extension(crl_distribution_points("http://crl.example/r.crl"))
            .sign(KEY)
        )
        assert cert.crl_distribution_points.all_urls() == ["http://crl.example/r.crl"]

    def test_certificate_policies_with_unotice(self):
        policy = PolicyInformation(
            OID_CP_DOMAIN_VALIDATED,
            qualifiers=[
                PolicyQualifier(
                    OID_QT_UNOTICE,
                    user_notice=UserNotice("Política de certificación", UTF8_STRING),
                )
            ],
        )
        cert = (
            CertificateBuilder()
            .subject_cn("x")
            .add_extension(certificate_policies(policy))
            .sign(KEY)
        )
        parsed = cert.policies
        assert parsed.policy_oids == [OID_CP_DOMAIN_VALIDATED]
        assert parsed.explicit_texts[0][1] == "Política de certificación"
        assert parsed.explicit_texts[0][0] == 12  # UTF8String tag

    def test_unotice_with_bmp_text(self):
        # The paper's top lint: explicitText not UTF8String.
        policy = PolicyInformation(
            OID_CP_DOMAIN_VALIDATED,
            qualifiers=[
                PolicyQualifier(
                    OID_QT_UNOTICE, user_notice=UserNotice("notice", BMP_STRING)
                )
            ],
        )
        cert = (
            CertificateBuilder()
            .subject_cn("x")
            .add_extension(certificate_policies(policy))
            .sign(KEY)
        )
        tag, text, ok = cert.policies.explicit_texts[0]
        assert tag == 30  # BMPString
        assert text == "notice"

    def test_missing_extensions_return_none(self):
        cert = CertificateBuilder().subject_cn("x").sign(KEY)
        assert cert.san is None
        assert cert.aia is None
        assert cert.crl_distribution_points is None
        assert cert.policies is None

    def test_dns_names_cn_fallback(self):
        cert = CertificateBuilder().subject_cn("fallback.example").sign(KEY)
        assert cert.dns_names == ["fallback.example"]


class TestChainVerification:
    def test_chain_via_pool(self):
        from repro.x509 import CertificatePool, build_chain

        root_key = generate_keypair(seed=1)
        root_name = Name.build([(OID_ORGANIZATION_NAME, "Root CA")])
        root = (
            CertificateBuilder()
            .subject_name(root_name)
            .add_extension(basic_constraints(ca=True))
            .sign(root_key)
        )
        leaf = (
            CertificateBuilder().subject_cn("leaf.example").issuer_name(root_name).sign(root_key)
        )
        pool = CertificatePool()
        pool.add(root)
        chain = build_chain(leaf, pool)
        assert [c.fingerprint() for c in chain] == [leaf.fingerprint(), root.fingerprint()]

    def test_chain_via_aia_url(self):
        from repro.x509 import CertificatePool, build_chain

        root_key = generate_keypair(seed=2)
        root_name = Name.build([(OID_ORGANIZATION_NAME, "AIA Root")])
        root = (
            CertificateBuilder()
            .subject_name(root_name)
            .add_extension(basic_constraints(ca=True))
            .sign(root_key)
        )
        leaf = (
            CertificateBuilder()
            .subject_cn("leaf.example")
            .issuer_name(root_name)
            .add_extension(
                authority_info_access(
                    AccessDescription(
                        OID_AD_CA_ISSUERS, GeneralName.uri("http://aia.example/root.crt")
                    )
                )
            )
            .sign(root_key)
        )
        pool = CertificatePool()
        pool.add(root, url="http://aia.example/root.crt")
        # Remove the by-subject route to force the AIA path.
        pool.by_subject.clear()
        chain = build_chain(leaf, pool)
        assert chain[-1].fingerprint() == root.fingerprint()

    def test_unverifiable_chain(self):
        from repro.x509 import CertificatePool, ChainError, build_chain

        orphan = (
            CertificateBuilder()
            .subject_cn("orphan.example")
            .issuer_name(Name.build([(OID_ORGANIZATION_NAME, "Ghost CA")]))
            .sign(KEY)
        )
        with pytest.raises(ChainError):
            build_chain(orphan, CertificatePool())

    def test_trust_anchor(self):
        from repro.x509 import CertificatePool, is_trusted

        root_key = generate_keypair(seed=3)
        root_name = Name.build([(OID_ORGANIZATION_NAME, "Trusted Root")])
        root = (
            CertificateBuilder()
            .subject_name(root_name)
            .add_extension(basic_constraints(ca=True))
            .sign(root_key)
        )
        leaf = (
            CertificateBuilder().subject_cn("ok.example").issuer_name(root_name).sign(root_key)
        )
        pool = CertificatePool()
        pool.add(root)
        assert is_trusted(leaf, pool, {root.fingerprint()})
        assert not is_trusted(leaf, pool, {"deadbeef"})


class TestKeys:
    def test_deterministic(self):
        assert generate_keypair(seed=9).n == generate_keypair(seed=9).n

    def test_different_seeds_differ(self):
        assert generate_keypair(seed=1).n != generate_keypair(seed=2).n

    def test_sign_verify(self):
        key = generate_keypair(seed=5)
        sig = key.sign(b"message")
        assert key.public_key.verify(b"message", sig)
        assert not key.public_key.verify(b"tampered", sig)

    def test_spki_roundtrip(self):
        from repro.asn1 import parse
        from repro.x509 import SimPublicKey

        key = generate_keypair(seed=6).public_key
        assert SimPublicKey.from_spki(parse(key.to_spki().encode())) == key

    def test_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(seed=1, bits=128)
