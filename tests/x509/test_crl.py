"""Tests for the CRL substrate."""

import datetime as dt

import pytest

from repro.asn1.oid import OID_ORGANIZATION_NAME
from repro.x509 import Name, generate_keypair
from repro.x509.crl import CertificateRevocationList, RevokedCertificate, build_crl

KEY = generate_keypair(seed=81)
ISSUER = Name.build([(OID_ORGANIZATION_NAME, "Test CA")])


class TestRoundtrip:
    def test_empty_crl(self):
        crl, der = build_crl(ISSUER, KEY, revoked_serials=[])
        parsed = CertificateRevocationList.from_der(der)
        assert parsed.revoked == []
        assert parsed.issuer.get(OID_ORGANIZATION_NAME) == ["Test CA"]

    def test_revoked_entries(self):
        crl, der = build_crl(ISSUER, KEY, revoked_serials=[1, 2, 666])
        parsed = CertificateRevocationList.from_der(der)
        assert [entry.serial for entry in parsed.revoked] == [1, 2, 666]
        assert parsed.is_revoked(666)
        assert not parsed.is_revoked(3)

    def test_update_window(self):
        crl, der = build_crl(
            ISSUER, KEY, revoked_serials=[], this_update=dt.datetime(2024, 6, 1)
        )
        parsed = CertificateRevocationList.from_der(der)
        assert parsed.is_current(dt.datetime(2024, 6, 3))
        assert not parsed.is_current(dt.datetime(2024, 7, 1))


class TestSignature:
    def test_verifies_with_issuer_key(self):
        crl, der = build_crl(ISSUER, KEY, revoked_serials=[5])
        parsed = CertificateRevocationList.from_der(der)
        assert parsed.verify(KEY.public_key)

    def test_rejects_wrong_key(self):
        crl, der = build_crl(ISSUER, KEY, revoked_serials=[5])
        parsed = CertificateRevocationList.from_der(der)
        other = generate_keypair(seed=82)
        assert not parsed.verify(other.public_key)

    def test_tamper_detected(self):
        crl, der = build_crl(ISSUER, KEY, revoked_serials=[5])
        parsed = CertificateRevocationList.from_der(der)
        parsed.tbs_der = parsed.tbs_der[:-1] + bytes([parsed.tbs_der[-1] ^ 1])
        assert not parsed.verify(KEY.public_key)
