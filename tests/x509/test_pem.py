"""Tests for PEM armor."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.x509 import Certificate, CertificateBuilder, generate_keypair
from repro.x509.pem import (
    PEMError,
    decode_pem,
    decode_pem_all,
    encode_pem,
    load_certificate_bytes,
)

KEY = generate_keypair(seed=111)


def sample_der() -> bytes:
    return (
        CertificateBuilder()
        .subject_cn("pem.example.com")
        .not_before(dt.datetime(2024, 1, 1))
        .sign(KEY)
        .to_der()
    )


class TestRoundtrip:
    def test_certificate_roundtrip(self):
        der = sample_der()
        pem = encode_pem(der)
        assert pem.startswith("-----BEGIN CERTIFICATE-----")
        assert decode_pem(pem) == der
        cert = Certificate.from_der(load_certificate_bytes(pem.encode()))
        assert cert.subject_common_names == ["pem.example.com"]

    def test_64_column_lines(self):
        pem = encode_pem(sample_der())
        for line in pem.splitlines()[1:-1]:
            assert len(line) <= 64

    def test_multiple_blocks(self):
        der = sample_der()
        bundle = encode_pem(der) + encode_pem(der)
        assert decode_pem_all(bundle) == [der, der]

    def test_label_filter(self):
        pem = encode_pem(b"\x01\x02", label="X509 CRL")
        with pytest.raises(PEMError):
            decode_pem(pem, label="CERTIFICATE")
        assert decode_pem(pem, label="X509 CRL") == b"\x01\x02"

    def test_raw_der_passthrough(self):
        der = sample_der()
        assert load_certificate_bytes(der) == der

    def test_garbage_rejected(self):
        with pytest.raises(PEMError):
            decode_pem("no pem here")

    def test_bad_base64_rejected(self):
        with pytest.raises(PEMError):
            decode_pem("-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----")


@given(st.binary(min_size=0, max_size=300))
def test_pem_roundtrip_property(data):
    assert decode_pem(encode_pem(data)) == data
