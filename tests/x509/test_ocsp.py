"""Tests for the OCSP substrate and the OCSP-first client behaviour."""

import datetime as dt

import pytest

from repro.x509 import generate_keypair
from repro.x509.ocsp import CertStatus, OCSPResponder, OCSPResponse

KEY = generate_keypair(seed=211)


class TestResponder:
    def test_good_status(self):
        responder = OCSPResponder(KEY)
        responder.register(42)
        response = OCSPResponse.from_der(responder.respond(42))
        assert response.status is CertStatus.GOOD
        assert response.serial == 42

    def test_revoked_status(self):
        responder = OCSPResponder(KEY)
        responder.revoke(666)
        response = OCSPResponse.from_der(responder.respond(666))
        assert response.status is CertStatus.REVOKED

    def test_unknown_status(self):
        responder = OCSPResponder(KEY)
        response = OCSPResponse.from_der(responder.respond(7))
        assert response.status is CertStatus.UNKNOWN

    def test_signature_verifies(self):
        responder = OCSPResponder(KEY)
        responder.register(1)
        response = OCSPResponse.from_der(responder.respond(1))
        assert response.verify(KEY.public_key)
        assert not response.verify(generate_keypair(seed=212).public_key)

    def test_validity_window(self):
        responder = OCSPResponder(KEY, lifetime_minutes=60)
        responder.register(1)
        response = OCSPResponse.from_der(responder.respond(1, when=dt.datetime(2024, 6, 1, 12)))
        assert response.is_current(dt.datetime(2024, 6, 1, 12, 30))
        assert not response.is_current(dt.datetime(2024, 6, 1, 14))


class TestOCSPFirstClient:
    def test_ocsp_defeats_crl_rewriting(self):
        """With OCSP deployed, the Section 5.2 attack is neutralized."""
        from repro.asn1.oid import OID_ORGANIZATION_NAME
        from repro.threats.revocation import CRLHostRegistry, RevocationClient
        from repro.tlslibs import PYOPENSSL
        from repro.x509 import (
            CertificateBuilder,
            Name,
            crl_distribution_points,
        )
        from repro.x509.crl import build_crl

        ca_key = generate_keypair(seed="revocation-ca")
        ca_name = Name.build([(OID_ORGANIZATION_NAME, "Compromised CA")])
        victim = (
            CertificateBuilder()
            .serial(666)
            .subject_cn("revoked.example.com")
            .issuer_name(ca_name)
            .not_before(dt.datetime(2024, 5, 1))
            .add_extension(crl_distribution_points("http://ssl\x01test.com/ca.crl"))
            .sign(ca_key)
        )
        registry = CRLHostRegistry()
        attacker_key = generate_keypair(seed="attacker")
        _fake, fake_der = build_crl(ca_name, attacker_key, revoked_serials=[])
        registry.publish("http://ssl.test.com/ca.crl", fake_der)

        responder = OCSPResponder(ca_key)
        responder.revoke(666)
        client = RevocationClient(
            PYOPENSSL, registry, issuer_key=ca_key.public_key, ocsp_responder=responder
        )
        outcome = client.check(victim)
        assert outcome.checked_url == "ocsp"
        assert outcome.revoked and not outcome.accepted

    def test_unknown_falls_back_to_crl(self):
        from repro.asn1.oid import OID_ORGANIZATION_NAME
        from repro.threats.revocation import CRLHostRegistry, RevocationClient
        from repro.tlslibs import GNUTLS
        from repro.x509 import CertificateBuilder, Name, crl_distribution_points
        from repro.x509.crl import build_crl

        ca_key = generate_keypair(seed=213)
        ca_name = Name.build([(OID_ORGANIZATION_NAME, "CA")])
        cert = (
            CertificateBuilder()
            .serial(5)
            .subject_cn("x.example.com")
            .issuer_name(ca_name)
            .not_before(dt.datetime(2024, 5, 1))
            .add_extension(crl_distribution_points("http://crl.example/c.crl"))
            .sign(ca_key)
        )
        registry = CRLHostRegistry()
        _crl, der = build_crl(ca_name, ca_key, revoked_serials=[5])
        registry.publish("http://crl.example/c.crl", der)
        responder = OCSPResponder(ca_key)  # serial 5 unknown to OCSP
        client = RevocationClient(
            GNUTLS, registry, issuer_key=ca_key.public_key, ocsp_responder=responder
        )
        outcome = client.check(cert)
        assert outcome.checked_url == "http://crl.example/c.crl"
        assert outcome.revoked
