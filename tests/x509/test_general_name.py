"""Tests for GeneralName encoding/parsing."""

import pytest

from repro.asn1 import BMP_STRING, DERDecodeError, UTF8_STRING, parse
from repro.asn1.oid import OID_COMMON_NAME, OID_ON_SMTP_UTF8_MAILBOX
from repro.x509 import GeneralName, GeneralNameKind, Name


class TestDNSName:
    def test_roundtrip(self):
        gn = GeneralName.dns("test.com")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.kind is GeneralNameKind.DNS_NAME
        assert parsed.value == "test.com"
        assert parsed.decode_ok

    def test_non_ia5_bytes_flagged(self):
        # A DNSName deliberately encoded with UTF-8 CJK content.
        gn = GeneralName.dns("中国.com", spec=UTF8_STRING)
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert not parsed.decode_ok

    def test_embedded_attribute_string(self):
        # Paper 5.2: DNSName="a.com DNS:b.com" — legal IA5, malicious text.
        gn = GeneralName.dns("a.com DNS:b.com")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.value == "a.com DNS:b.com"

    def test_str(self):
        assert str(GeneralName.dns("a.com")) == "DNS:a.com"


class TestEmailAndURI:
    def test_email_roundtrip(self):
        gn = GeneralName.email("user@example.com")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.kind is GeneralNameKind.RFC822_NAME
        assert parsed.value == "user@example.com"

    def test_uri_roundtrip(self):
        gn = GeneralName.uri("http://crl.example.com/r.crl")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.kind is GeneralNameKind.URI
        assert str(parsed).startswith("URI:")

    def test_uri_with_control_char(self):
        # Paper 5.2 CRL example: "http://ssl\x01test.com".
        gn = GeneralName.uri("http://ssl\x01test.com")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert "\x01" in parsed.value


class TestIPAddress:
    def test_v4(self):
        gn = GeneralName.ip("192.0.2.1")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.value == "192.0.2.1"
        assert parsed.raw == bytes([192, 0, 2, 1])

    def test_v6(self):
        gn = GeneralName.ip("2001:db8::1")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.value == "2001:db8::1"

    def test_bad_length_becomes_hex(self):
        from repro.asn1 import Element, Tag

        raw = Element.primitive(Tag.context(7), b"\x01\x02\x03")
        parsed = GeneralName.parse(raw)
        assert parsed.value == "010203"


class TestDirectoryName:
    def test_roundtrip(self):
        inner = Name.build([(OID_COMMON_NAME, "Entity")])
        gn = GeneralName.directory(inner)
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.kind is GeneralNameKind.DIRECTORY_NAME
        assert parsed.name.get(OID_COMMON_NAME) == ["Entity"]
        assert str(parsed) == "DirName:CN=Entity"


class TestOtherName:
    def test_smtp_utf8_mailbox(self):
        gn = GeneralName.smtp_utf8_mailbox("用户@例子.com")
        parsed = GeneralName.parse(parse(gn.encode().encode()))
        assert parsed.kind is GeneralNameKind.OTHER_NAME
        assert parsed.other_name_oid == OID_ON_SMTP_UTF8_MAILBOX
        assert parsed.value == "用户@例子.com"


class TestErrors:
    def test_universal_tag_rejected(self):
        from repro.asn1 import encode_integer

        with pytest.raises(DERDecodeError):
            GeneralName.parse(encode_integer(5))

    def test_unknown_context_tag(self):
        from repro.asn1 import Element, Tag

        with pytest.raises(DERDecodeError):
            GeneralName.parse(Element.primitive(Tag.context(12), b""))
