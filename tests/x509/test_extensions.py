"""Focused tests for the extension codecs."""

import pytest

from repro.asn1 import BMP_STRING, UTF8_STRING, parse
from repro.asn1.oid import (
    OID_AD_CA_ISSUERS,
    OID_AD_OCSP,
    OID_CP_ANY_POLICY,
    OID_CP_DOMAIN_VALIDATED,
    OID_EXT_SAN,
    OID_EKU_SERVER_AUTH,
    OID_EKU_CLIENT_AUTH,
    OID_QT_CPS,
    OID_QT_UNOTICE,
)
from repro.x509 import (
    AccessDescription,
    CRLDistributionPoints,
    Extension,
    GeneralName,
    GeneralNames,
    InfoAccess,
    ParsedPolicies,
    PolicyInformation,
    PolicyQualifier,
    UserNotice,
    basic_constraints,
    certificate_policies,
    crl_distribution_points,
    ct_poison,
    extended_key_usage,
    parse_basic_constraints,
    subject_alt_name,
)


class TestExtensionWrapper:
    def test_critical_flag_roundtrip(self):
        ext = Extension(OID_EXT_SAN, True, b"\x30\x00")
        parsed = Extension.parse(parse(ext.encode().encode()))
        assert parsed.critical
        assert parsed.oid == OID_EXT_SAN
        assert parsed.value_der == b"\x30\x00"

    def test_noncritical_default(self):
        ext = Extension(OID_EXT_SAN, False, b"\x30\x00")
        parsed = Extension.parse(parse(ext.encode().encode()))
        assert not parsed.critical


class TestGeneralNames:
    def test_mixed_kinds_roundtrip(self):
        gns = GeneralNames(
            [
                GeneralName.dns("a.example.com"),
                GeneralName.email("x@example.com"),
                GeneralName.uri("https://example.com/"),
                GeneralName.ip("192.0.2.7"),
            ]
        )
        parsed = GeneralNames.parse(gns.encode())
        assert parsed.dns_names() == ["a.example.com"]
        assert len(parsed.names) == 4

    def test_empty_sequence(self):
        parsed = GeneralNames.parse(GeneralNames([]).encode())
        assert parsed.names == []


class TestInfoAccess:
    def test_multiple_descriptions(self):
        access = InfoAccess(
            [
                AccessDescription(OID_AD_OCSP, GeneralName.uri("http://ocsp.example/")),
                AccessDescription(
                    OID_AD_CA_ISSUERS, GeneralName.uri("http://ca.example/ca.crt")
                ),
            ]
        )
        parsed = InfoAccess.parse(access.encode())
        assert parsed.locations_for(OID_AD_OCSP) == ["http://ocsp.example/"]
        assert parsed.locations_for(OID_AD_CA_ISSUERS) == ["http://ca.example/ca.crt"]


class TestCRLDP:
    def test_multiple_points(self):
        ext = crl_distribution_points("http://a.example/1.crl", "http://b.example/2.crl")
        parsed = CRLDistributionPoints.parse(ext.value_der)
        assert parsed.all_urls() == ["http://a.example/1.crl", "http://b.example/2.crl"]

    def test_empty(self):
        parsed = CRLDistributionPoints.parse(CRLDistributionPoints([]).encode())
        assert parsed.all_urls() == []


class TestPolicies:
    def test_multiple_policies(self):
        ext = certificate_policies(
            PolicyInformation(OID_CP_ANY_POLICY),
            PolicyInformation(
                OID_CP_DOMAIN_VALIDATED,
                qualifiers=[
                    PolicyQualifier(OID_QT_CPS, cps_uri="http://cps.example/"),
                    PolicyQualifier(
                        OID_QT_UNOTICE, user_notice=UserNotice("notice", UTF8_STRING)
                    ),
                ],
            ),
        )
        parsed = ParsedPolicies.parse(ext.value_der)
        assert parsed.policy_oids == [OID_CP_ANY_POLICY, OID_CP_DOMAIN_VALIDATED]
        assert parsed.cps_uris == ["http://cps.example/"]
        assert parsed.explicit_texts[0][1] == "notice"

    def test_bmp_text_decode_flag(self):
        ext = certificate_policies(
            PolicyInformation(
                OID_CP_DOMAIN_VALIDATED,
                qualifiers=[
                    PolicyQualifier(
                        OID_QT_UNOTICE, user_notice=UserNotice("中文", BMP_STRING)
                    )
                ],
            )
        )
        tag, text, ok = ParsedPolicies.parse(ext.value_der).explicit_texts[0]
        assert tag == 30 and text == "中文" and ok


class TestBasicConstraintsAndEKU:
    def test_ca_with_pathlen(self):
        ext = basic_constraints(ca=True, path_len=2)
        assert ext.critical
        assert parse_basic_constraints(ext.value_der) == (True, 2)

    def test_end_entity(self):
        ext = basic_constraints(ca=False, critical=False)
        assert parse_basic_constraints(ext.value_der) == (False, None)

    def test_eku_encodes(self):
        ext = extended_key_usage(OID_EKU_SERVER_AUTH, OID_EKU_CLIENT_AUTH)
        root = parse(ext.value_der)
        assert len(root.children) == 2

    def test_ct_poison_is_critical_null(self):
        ext = ct_poison()
        assert ext.critical
        assert ext.value_der == b"\x05\x00"
