"""Tests for NameConstraints and the text-pipeline bypass."""

import datetime as dt

import pytest

from repro.asn1.oid import OID_ORGANIZATION_NAME
from repro.tlslibs import PYOPENSSL
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    Name,
    basic_constraints,
    generate_keypair,
    subject_alt_name,
)
from repro.x509.name_constraints import (
    NameConstraints,
    check_chain_name_constraints,
    constraints_of,
    naive_text_check_permits,
    naive_text_hostname_match,
)

KEY = generate_keypair(seed=191)
CA_NAME = Name.build([(OID_ORGANIZATION_NAME, "Constrained CA")])


def make_ca(permitted=("a.com",), excluded=()):
    return (
        CertificateBuilder()
        .subject_name(CA_NAME)
        .not_before(dt.datetime(2020, 1, 1))
        .validity_days(3650)
        .add_extension(basic_constraints(ca=True))
        .add_extension(
            NameConstraints(
                permitted_dns=list(permitted), excluded_dns=list(excluded)
            ).to_extension()
        )
        .sign(KEY)
    )


def make_leaf(*san_names, cn="leaf.a.com"):
    return (
        CertificateBuilder()
        .subject_cn(cn)
        .issuer_name(CA_NAME)
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(*[GeneralName.dns(n) for n in san_names]))
        .sign(KEY)
    )


class TestCodec:
    def test_roundtrip(self):
        ca = make_ca(permitted=("a.com", "b.org"), excluded=("bad.a.com",))
        parsed = constraints_of(ca)
        assert parsed.permitted_dns == ["a.com", "b.org"]
        assert parsed.excluded_dns == ["bad.a.com"]

    def test_absent_returns_none(self):
        leaf = make_leaf("x.a.com")
        assert constraints_of(leaf) is None


class TestMatching:
    def test_subtree_semantics(self):
        constraints = NameConstraints(permitted_dns=["a.com"])
        assert constraints.permits("a.com")
        assert constraints.permits("www.a.com")
        assert constraints.permits("deep.sub.a.com")
        assert not constraints.permits("evil.com")
        assert not constraints.permits("nota.com")

    def test_exclusion_wins(self):
        constraints = NameConstraints(
            permitted_dns=["a.com"], excluded_dns=["internal.a.com"]
        )
        assert constraints.permits("www.a.com")
        assert not constraints.permits("x.internal.a.com")

    def test_no_permitted_means_allow(self):
        constraints = NameConstraints(excluded_dns=["bad.com"])
        assert constraints.permits("anything.example")
        assert not constraints.permits("x.bad.com")


class TestStructuredChecking:
    def test_compliant_leaf(self):
        ca = make_ca()
        leaf = make_leaf("www.a.com", "api.a.com")
        assert check_chain_name_constraints(leaf, ca) == []

    def test_violating_leaf(self):
        ca = make_ca()
        leaf = make_leaf("www.a.com", "evil.com")
        assert check_chain_name_constraints(leaf, ca) == ["evil.com"]

    def test_cn_fallback_when_no_san(self):
        ca = make_ca()
        leaf = (
            CertificateBuilder()
            .subject_cn("evil.com")
            .issuer_name(CA_NAME)
            .not_before(dt.datetime(2024, 1, 1))
            .sign(KEY)
        )
        assert check_chain_name_constraints(leaf, ca) == ["evil.com"]

    def test_crafted_embedded_name_rejected(self):
        # The single real DNSName is the whole crafted string, which is
        # not within a.com — structured checking catches it.
        ca = make_ca()
        crafted = make_leaf("evil.com, DNS:x.a.com")
        assert check_chain_name_constraints(crafted, ca) == ["evil.com, DNS:x.a.com"]


class TestTextPipelineBypass:
    """The full CVE-2021-44533-shaped bypass, end to end."""

    def test_bypass_chain(self):
        ca = make_ca(permitted=("a.com",))
        crafted = make_leaf("evil.com, DNS:x.a.com")
        san_text = PYOPENSSL.san_string(crafted)
        assert san_text == "DNS:evil.com, DNS:x.a.com"
        # Buggy any()-based constraint check approves (decoy x.a.com)...
        assert naive_text_check_permits(san_text, ca)
        # ...and the text hostname matcher validates the victim host.
        assert naive_text_hostname_match(san_text, "evil.com")
        # The structured pipeline rejects the same certificate.
        assert check_chain_name_constraints(crafted, ca)

    def test_honest_cert_passes_both(self):
        ca = make_ca(permitted=("a.com",))
        honest = make_leaf("www.a.com")
        san_text = PYOPENSSL.san_string(honest)
        assert naive_text_check_permits(san_text, ca)
        assert check_chain_name_constraints(honest, ca) == []

    def test_blatant_forgery_caught_even_naively(self):
        ca = make_ca(permitted=("a.com",))
        forged = make_leaf("evil.com")
        san_text = PYOPENSSL.san_string(forged)
        assert not naive_text_check_permits(san_text, ca)
