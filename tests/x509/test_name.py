"""Tests for DN model, codec, and the three string representations."""

import pytest
from hypothesis import given, strategies as st

from repro.asn1 import (
    BMP_STRING,
    PRINTABLE_STRING,
    TELETEX_STRING,
    UTF8_STRING,
    parse,
)
from repro.asn1.oid import (
    OID_COMMON_NAME,
    OID_COUNTRY_NAME,
    OID_ORGANIZATION_NAME,
)
from repro.x509 import (
    AttributeTypeAndValue,
    Name,
    RelativeDistinguishedName,
    escape_rfc1779,
    escape_rfc2253,
    escape_rfc4514,
    unescape_rfc4514,
)


def simple_name(**kwargs) -> Name:
    attrs = []
    mapping = {"c": OID_COUNTRY_NAME, "o": OID_ORGANIZATION_NAME, "cn": OID_COMMON_NAME}
    for key, value in kwargs.items():
        attrs.append((mapping[key], value))
    return Name.build(attrs)


class TestCodec:
    def test_roundtrip(self):
        name = simple_name(c="DE", o="Störi AG", cn="störi.de")
        parsed = Name.parse(parse(name.encode().encode()))
        assert parsed.get(OID_COMMON_NAME) == ["störi.de"]
        assert parsed.get(OID_ORGANIZATION_NAME) == ["Störi AG"]

    def test_declared_spec_preserved(self):
        name = Name.build([(OID_COUNTRY_NAME, "DE")], spec=PRINTABLE_STRING)
        parsed = Name.parse(parse(name.encode().encode()))
        assert parsed.attributes()[0].spec is PRINTABLE_STRING

    def test_raw_bytes_roundtrip(self):
        # Invalid UTF-8 bytes declared as UTF8String must survive.
        attr = AttributeTypeAndValue(
            oid=OID_COMMON_NAME, value="", spec=UTF8_STRING, raw=b"bad\xff\xfe"
        )
        name = Name(rdns=[RelativeDistinguishedName([attr])])
        parsed = Name.parse(parse(name.encode().encode()))
        assert parsed.attributes()[0].raw == b"bad\xff\xfe"
        assert not parsed.attributes()[0].decode_ok

    def test_multivalued_rdn(self):
        rdn = RelativeDistinguishedName(
            [
                AttributeTypeAndValue(OID_COMMON_NAME, "a"),
                AttributeTypeAndValue(OID_ORGANIZATION_NAME, "b"),
            ]
        )
        name = Name(rdns=[rdn])
        parsed = Name.parse(parse(name.encode().encode()))
        assert parsed.rdns[0].is_multivalued

    def test_teletex_roundtrip(self):
        name = Name.build([(OID_ORGANIZATION_NAME, "Störi AG")], spec=TELETEX_STRING)
        parsed = Name.parse(parse(name.encode().encode()))
        assert parsed.get(OID_ORGANIZATION_NAME) == ["Störi AG"]

    def test_bmp_roundtrip(self):
        name = Name.build([(OID_COMMON_NAME, "中国")], spec=BMP_STRING)
        parsed = Name.parse(parse(name.encode().encode()))
        assert parsed.get(OID_COMMON_NAME) == ["中国"]

    def test_empty_name(self):
        assert Name().is_empty
        assert Name.parse(parse(Name().encode().encode())).is_empty


class TestAccessors:
    def test_duplicates(self):
        name = simple_name(cn="a")
        name.rdns.append(
            RelativeDistinguishedName([AttributeTypeAndValue(OID_COMMON_NAME, "b")])
        )
        assert name.has_duplicates(OID_COMMON_NAME)
        assert name.get(OID_COMMON_NAME) == ["a", "b"]

    def test_equality_is_der_equality(self):
        assert simple_name(cn="x") == simple_name(cn="x")
        assert simple_name(cn="x") != simple_name(cn="y")

    def test_hashable(self):
        assert len({simple_name(cn="x"), simple_name(cn="x")}) == 1


class TestStringRepresentations:
    def test_rfc4514_order_reversed(self):
        name = simple_name(c="DE", o="Org", cn="host")
        assert name.rfc4514_string() == "CN=host,O=Org,C=DE"

    def test_rfc4514_escapes_comma(self):
        name = simple_name(o="Acme, Inc.")
        assert name.rfc4514_string() == "O=Acme\\, Inc."

    def test_rfc4514_escapes_leading_hash(self):
        name = simple_name(o="#value")
        assert "\\#" in name.rfc4514_string()

    def test_rfc4514_escapes_edges_spaces(self):
        name = simple_name(o=" padded ")
        assert name.rfc4514_string() == "O=\\ padded\\ "

    def test_rfc2253_hex_escapes_controls(self):
        name = simple_name(cn="a\x00b")
        assert "\\00" in name.rfc2253_string()

    def test_rfc1779_quotes(self):
        name = simple_name(o="Acme, Inc.")
        assert name.rfc1779_string() == 'O="Acme, Inc."'

    def test_openssl_oneline(self):
        name = simple_name(c="DE", cn="host")
        assert name.openssl_oneline() == "/C=DE/CN=host"

    def test_plus_between_multivalue(self):
        rdn = RelativeDistinguishedName(
            [
                AttributeTypeAndValue(OID_COMMON_NAME, "a"),
                AttributeTypeAndValue(OID_ORGANIZATION_NAME, "b"),
            ]
        )
        assert Name(rdns=[rdn]).rfc4514_string() == "CN=a+O=b"


class TestEscaping:
    @pytest.mark.parametrize("ch", list(',+"\\<>;'))
    def test_specials_escaped(self, ch):
        assert escape_rfc4514(f"a{ch}b") == f"a\\{ch}b"

    def test_nul_escaped(self):
        assert escape_rfc4514("a\x00b") == "a\\00b"

    def test_unescape_roundtrip(self):
        for value in ["Acme, Inc.", "#x", " pad ", "a+b", 'q"q', "back\\slash"]:
            assert unescape_rfc4514(escape_rfc4514(value)) == value

    def test_1779_plain_unquoted(self):
        assert escape_rfc1779("plain") == "plain"

    def test_1779_empty(self):
        assert escape_rfc1779("") == '""'

    def test_2253_del_escaped(self):
        assert escape_rfc2253("a\x7fb") == "a\\7Fb"

    @given(st.text(alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E), max_size=20))
    def test_escape_unescape_property(self, value):
        assert unescape_rfc4514(escape_rfc4514(value)) == value
