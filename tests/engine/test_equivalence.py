"""Satellite 3: engine-routed outputs vs the seed reference loop.

Every surface that now routes through :mod:`repro.engine` must produce
byte-identical output to the pre-engine reference semantics — the
unoptimized per-certificate loop with every derived-view cache
disabled.  Covered here: merged corpus summaries (``jobs=1`` vs
``jobs=4`` vs reference, caches on vs :func:`caching_disabled`),
collected per-certificate reports, the service worker primitive
(timed vs untimed bodies), and the CLI JSON document.
"""

import datetime as dt

import pytest

from repro.cli import main
from repro.ct import CorpusGenerator
from repro.engine import Engine, lint_ders_timed, run_corpus
from repro.lint import run_lints, summarize, summary_to_json
from repro.lint.parallel import lint_corpus_parallel, lint_ders_to_json
from repro.lint.serialization import report_to_json
from repro.x509 import (
    Certificate,
    CertificateBuilder,
    GeneralName,
    caching_disabled,
    generate_keypair,
    subject_alt_name,
)
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=4002)


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=11, scale=0.00001).generate()


@pytest.fixture(scope="module")
def reference_reports(corpus):
    """The seed semantics: per-record loop, unoptimized, caches off."""
    with caching_disabled():
        return [
            run_lints(r.certificate, issued_at=r.issued_at, optimized=False)
            for r in corpus.records
        ]


class TestCorpusSummaries:
    def test_serial_and_pool_match_reference(self, corpus, reference_reports):
        baseline = summary_to_json(summarize(reference_reports))
        one = run_corpus(corpus, jobs=1)
        four = run_corpus(corpus, jobs=4)
        assert summary_to_json(one.summary) == baseline
        assert summary_to_json(four.summary) == baseline
        assert one.jobs == 1
        assert four.jobs == 4

    def test_unoptimized_engine_route_matches_reference(
        self, corpus, reference_reports
    ):
        baseline = summary_to_json(summarize(reference_reports))
        outcome = run_corpus(corpus, jobs=2, optimized=False)
        assert summary_to_json(outcome.summary) == baseline

    def test_public_shim_matches_module_entry(self, corpus):
        via_shim = lint_corpus_parallel(corpus, jobs=2)
        via_engine = run_corpus(corpus, jobs=2)
        assert summary_to_json(via_shim.summary) == summary_to_json(
            via_engine.summary
        )


class TestCollectedReports:
    def test_reports_byte_identical_across_jobs(self, corpus, reference_reports):
        one = run_corpus(corpus, jobs=1, collect_reports=True)
        four = run_corpus(corpus, jobs=4, collect_reports=True)
        expected = [
            report_to_json(report, record.certificate)
            for report, record in zip(reference_reports, corpus.records)
        ]
        for outcome in (one, four):
            got = [
                report_to_json(report, record.certificate)
                for report, record in zip(outcome.reports, corpus.records)
            ]
            assert got == expected

    def test_analysis_entry_matches_reference(self, corpus, reference_reports):
        from repro.analysis import lint_corpus

        reports = lint_corpus(corpus, jobs=1)
        assert len(reports) == len(corpus.records)
        expected = [
            report_to_json(report, record.certificate)
            for report, record in zip(reference_reports, corpus.records)
        ]
        got = [
            report_to_json(report, record.certificate)
            for report, record in zip(reports, corpus.records)
        ]
        assert got == expected


class TestServiceWorkerPrimitive:
    def test_timed_bodies_match_untimed(self, corpus):
        ders = tuple(r.certificate.to_der() for r in corpus.records[:16])
        batch = lint_ders_timed(ders)
        assert batch.bodies == lint_ders_to_json(ders)
        assert batch.timings.certs == len(ders)
        assert batch.timings.bytes == sum(len(d) for d in ders)


class TestCliSurface:
    def _cert(self):
        return (
            CertificateBuilder()
            .subject_cn("eq.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(subject_alt_name(GeneralName.dns("eq.example.com")))
            .sign(KEY)
        )

    def test_json_document_matches_reference(self, tmp_path, capsys):
        cert = self._cert()
        path = tmp_path / "cert.pem"
        path.write_text(encode_pem(cert.to_der()))
        assert main(["lint", str(path), "--json"]) == 0
        out = capsys.readouterr().out
        reparsed = Certificate.from_der(cert.to_der())
        with caching_disabled():
            report = run_lints(reparsed, optimized=False)
        assert out == report_to_json(report, reparsed) + "\n"

    def test_engine_item_json_matches_reference(self):
        cert = self._cert()
        engine = Engine()
        item = engine.lint_bytes(cert.to_der(), origin="<test>")
        assert item.ok
        with caching_disabled():
            report = run_lints(
                Certificate.from_der(cert.to_der()), optimized=False
            )
        assert engine.render_json(item) == report_to_json(report, item.cert)
