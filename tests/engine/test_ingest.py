"""Ingest-stage sniffing: one taxonomy for the CLI and the service.

Satellite 1: the PEM/DER/base64 decision procedure and its
``empty_body`` / ``bad_pem`` / ``bad_body`` / ``unreadable`` error
codes live once in :mod:`repro.engine.ingest`, and the CLI accepts
every shape the service does (raw DER, base64 of DER, base64 of PEM).
"""

import base64
import datetime as dt
import io

import pytest

from repro.cli import main
from repro.engine import IngestError, read_path, sniff_certificate_bytes
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=4001)


def build_cert():
    return (
        CertificateBuilder()
        .subject_cn("ok.example.com")
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns("ok.example.com")))
        .sign(KEY)
    )


class TestSniffing:
    def test_pem_decodes_to_der(self):
        der = build_cert().to_der()
        assert sniff_certificate_bytes(encode_pem(der).encode()) == der

    def test_pem_with_surrounding_whitespace(self):
        der = build_cert().to_der()
        body = b"\n\n  " + encode_pem(der).encode() + b"  \n"
        assert sniff_certificate_bytes(body) == der

    def test_raw_der_passes_through_untouched(self):
        der = build_cert().to_der()
        assert sniff_certificate_bytes(der) is der

    def test_base64_of_der(self):
        der = build_cert().to_der()
        assert sniff_certificate_bytes(base64.b64encode(der)) == der

    def test_base64_of_der_with_line_breaks(self):
        der = build_cert().to_der()
        encoded = base64.encodebytes(der)  # wrapped at 76 columns
        assert sniff_certificate_bytes(encoded) == der

    def test_base64_of_pem(self):
        der = build_cert().to_der()
        wrapped = base64.b64encode(encode_pem(der).encode())
        assert sniff_certificate_bytes(wrapped) == der

    def test_empty_body(self):
        with pytest.raises(IngestError) as excinfo:
            sniff_certificate_bytes(b"")
        assert excinfo.value.code == "empty_body"

    def test_whitespace_only_is_empty_body(self):
        with pytest.raises(IngestError) as excinfo:
            sniff_certificate_bytes(b" \n\t ")
        assert excinfo.value.code == "empty_body"

    def test_corrupt_pem_armor_is_bad_pem(self):
        with pytest.raises(IngestError) as excinfo:
            sniff_certificate_bytes(b"-----BEGIN CERTIFICATE-----\n!!!\n")
        assert excinfo.value.code == "bad_pem"
        assert "invalid PEM body" in excinfo.value.message

    def test_base64_of_corrupt_pem_is_bad_pem(self):
        wrapped = base64.b64encode(b"-----BEGIN CERTIFICATE-----\n!!!\n")
        with pytest.raises(IngestError) as excinfo:
            sniff_certificate_bytes(wrapped)
        assert excinfo.value.code == "bad_pem"

    def test_garbage_is_bad_body(self):
        with pytest.raises(IngestError) as excinfo:
            sniff_certificate_bytes(b"\xff\xfenot a certificate")
        assert excinfo.value.code == "bad_body"


class TestReadPath:
    def test_reads_file_bytes(self, tmp_path):
        path = tmp_path / "cert.der"
        der = build_cert().to_der()
        path.write_bytes(der)
        source = read_path(str(path))
        assert source.origin == str(path)
        assert source.data == der

    def test_missing_file_is_unreadable(self, tmp_path):
        missing = str(tmp_path / "nope.pem")
        with pytest.raises(IngestError) as excinfo:
            read_path(missing)
        assert excinfo.value.code == "unreadable"
        assert f"cannot read {missing}" in excinfo.value.message

    def test_dash_reads_stdin_buffer(self):
        class _Stdin:
            buffer = io.BytesIO(b"payload")

        source = read_path("-", stdin=_Stdin())
        assert source.origin == "-"
        assert source.data == b"payload"


class TestCliAcceptsServiceShapes:
    """The CLI now ingests every shape the service's POST body does."""

    def test_raw_der_file(self, tmp_path):
        path = tmp_path / "cert.der"
        path.write_bytes(build_cert().to_der())
        assert main(["lint", str(path)]) == 0

    def test_base64_der_file(self, tmp_path):
        path = tmp_path / "cert.b64"
        path.write_bytes(base64.b64encode(build_cert().to_der()))
        assert main(["lint", str(path)]) == 0

    def test_base64_pem_file(self, tmp_path):
        path = tmp_path / "cert.pem.b64"
        path.write_bytes(base64.b64encode(encode_pem(build_cert().to_der()).encode()))
        assert main(["lint", str(path)]) == 0

    def test_empty_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.pem"
        path.write_bytes(b"")
        assert main(["lint", str(path)]) == 2
        assert "not a parseable certificate" in capsys.readouterr().err

    def test_bad_pem_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.pem"
        path.write_text("-----BEGIN CERTIFICATE-----\n!!!\n")
        assert main(["lint", str(path)]) == 2
        assert "invalid PEM body" in capsys.readouterr().err
