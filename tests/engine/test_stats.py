"""EngineStats / StageTimings: merge algebra, rendering, surfaces.

The per-stage collector must merge worker timings exactly (plain
addition, any grouping), serialize to the ``stages`` block shared by
the service ``/metrics`` and the throughput benchmark record, and
surface through ``repro lint --stats`` / ``repro corpus --stats``.
"""

import datetime as dt

from repro.cli import main
from repro.engine import EngineStats, StageTimings, run_corpus
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=4004)


def write_cert(tmp_path, name="stats.example.com"):
    cert = (
        CertificateBuilder()
        .subject_cn(name)
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns(name)))
        .sign(KEY)
    )
    path = tmp_path / "cert.pem"
    path.write_text(encode_pem(cert.to_der()))
    return str(path), cert


class _Record:
    """Minimal corpus record stand-in."""

    def __init__(self, certificate, issued_at=None):
        self.certificate = certificate
        self.issued_at = issued_at


class TestStageTimings:
    def test_add_accumulates_both_clocks(self):
        timings = StageTimings()
        timings.add("lint", 0.25, 0.2, 2)
        timings.add("lint", 0.75, 0.3, 3)
        assert timings.wall["lint"] == 1.0
        assert timings.cpu["lint"] == 0.5
        assert timings.items["lint"] == 5

    def test_merge_is_plain_addition(self):
        a = StageTimings(
            wall={"decode": 1.0}, cpu={"decode": 0.9},
            items={"decode": 4}, certs=4, bytes=100,
        )
        b = StageTimings(
            wall={"decode": 0.5, "lint": 2.0}, cpu={"lint": 1.5},
            items={"lint": 4}, certs=4, bytes=60,
        )
        a.merge(b)
        assert a.wall == {"decode": 1.5, "lint": 2.0}
        assert a.cpu == {"decode": 0.9, "lint": 1.5}
        assert a.items == {"decode": 4, "lint": 4}
        assert a.certs == 8
        assert a.bytes == 160

    def test_worker_merge_drops_wall_keeps_cpu(self):
        # N workers' wall clocks overlap; summing them would report up
        # to N× the elapsed time, so distributed merges keep only the
        # additive columns (cpu, items, totals).
        a = StageTimings(wall={"lint": 1.0}, cpu={"lint": 1.0})
        worker = StageTimings(
            wall={"lint": 9.0}, cpu={"lint": 2.0}, items={"lint": 5}, certs=5
        )
        a.merge(worker, worker=True)
        assert a.wall == {"lint": 1.0}
        assert a.cpu == {"lint": 3.0}
        assert a.items == {"lint": 5}
        assert a.certs == 5

    def test_time_context_manager_records(self):
        timings = StageTimings()
        with timings.time("ingest", items=3):
            pass
        assert timings.wall["ingest"] >= 0.0
        assert timings.cpu["ingest"] >= 0.0
        assert timings.items["ingest"] == 3


class TestEngineStatsRendering:
    def test_to_dict_canonical_order_and_shape(self):
        stats = EngineStats()
        stats.add("sink", 0.1, items=1)
        stats.add("ingest", 0.2, items=1)
        stats.add("lint", 0.3, 0.28, items=1)
        stats.add("decode", 0.4, items=1)
        payload = stats.to_dict()
        assert list(payload["stages"]) == ["ingest", "decode", "lint", "sink"]
        assert payload["stages"]["lint"] == {
            "wall_seconds": 0.3,
            "cpu_seconds": 0.28,
            "items": 1,
        }
        assert payload["certs"] == 0
        assert "cache" not in payload
        assert "shards" not in payload

    def test_execute_stage_sorts_after_ingest(self):
        stats = EngineStats()
        stats.add("sink", 0.1)
        stats.add("execute", 0.5)
        stats.add("ingest", 0.2)
        assert list(stats.to_dict()["stages"]) == ["ingest", "execute", "sink"]

    def test_cache_and_shard_gauges_appear_when_recorded(self):
        stats = EngineStats()
        stats.record_cache(hits=2, misses=1)
        stats.record_shards([3, 3, 2], jobs=2)
        payload = stats.to_dict()
        assert payload["cache"] == {"hits": 2, "misses": 1}
        assert payload["shards"] == {"count": 3, "min": 2, "max": 3, "mean": 2.67}
        assert payload["jobs"] == 2

    def test_render_lines_header_and_totals(self):
        stats = EngineStats()
        stats.add("lint", 1.5, 1.4, items=10)
        stats.count_certs(10, 4200)
        lines = stats.render_lines()
        assert lines[0] == "engine stats:"
        assert any("lint:" in line and "wall" in line and "cpu" in line for line in lines)
        assert any("certs: 10" in line and "bytes: 4200" in line for line in lines)

    def test_merge_timings_folds_worker_record(self):
        stats = EngineStats()
        worker = StageTimings(
            wall={"lint": 2.0}, cpu={"lint": 1.8},
            items={"lint": 7}, certs=7, bytes=70,
        )
        stats.merge_timings(worker)
        assert stats.timings.wall["lint"] == 2.0
        assert stats.timings.certs == 7

    def test_merge_timings_worker_flag_drops_wall(self):
        stats = EngineStats()
        worker = StageTimings(wall={"lint": 2.0}, cpu={"lint": 1.8})
        stats.merge_timings(worker, worker=True)
        assert "lint" not in stats.timings.wall
        assert stats.timings.cpu["lint"] == 1.8


class TestStatsThreadedThroughRuns:
    def test_corpus_run_populates_every_stage(self):
        records = [
            _Record(
                CertificateBuilder()
                .subject_cn(f"run-{i}.example.com")
                .not_before(dt.datetime(2024, 1, 1))
                .add_extension(
                    subject_alt_name(GeneralName.dns(f"run-{i}.example.com"))
                )
                .sign(KEY)
            )
            for i in range(4)
        ]
        stats = EngineStats()
        run_corpus(records, jobs=1, stats=stats)
        seconds = stats.stage_wall_seconds()
        assert set(seconds) == {"ingest", "decode", "lint", "sink"}
        assert stats.timings.certs == 4
        assert stats.timings.items["lint"] == 4
        assert sum(stats.shard_sizes) == 4
        assert stats.jobs == 1

    def test_pool_run_splits_wall_and_cpu(self):
        records = [
            _Record(
                CertificateBuilder()
                .subject_cn(f"pool-{i}.example.com")
                .not_before(dt.datetime(2024, 1, 1))
                .add_extension(
                    subject_alt_name(GeneralName.dns(f"pool-{i}.example.com"))
                )
                .sign(KEY)
            )
            for i in range(4)
        ]
        stats = EngineStats()
        run_corpus(records, jobs=2, shards=2, stats=stats)
        wall = stats.stage_wall_seconds()
        cpu = stats.stage_cpu_seconds()
        # Parent wall covers ingest/execute/sink; the workers' own wall
        # never sums into it — their contribution is the cpu column.
        assert "execute" in wall
        assert "decode" not in wall and "lint" not in wall
        assert {"decode", "lint", "sink"} <= set(cpu)
        assert stats.timings.certs == 4


class TestCliStatsFlag:
    def test_lint_stats_on_stderr(self, tmp_path, capsys):
        path, _cert = write_cert(tmp_path)
        assert main(["lint", path, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "engine stats:" in captured.err
        assert "lint:" in captured.err
        # stdout keeps the parity-tested report format untouched.
        assert "engine stats:" not in captured.out

    def test_lint_without_stats_keeps_stderr_empty(self, tmp_path, capsys):
        path, _cert = write_cert(tmp_path)
        assert main(["lint", path]) == 0
        assert capsys.readouterr().err == ""

    def test_corpus_stats_on_stderr(self, capsys):
        args = ["corpus", "--scale", "0.000005", "--seed", "3", "--stats"]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "engine stats:" in captured.err
        assert "shards:" in captured.err
