"""EngineStats / StageTimings: merge algebra, rendering, surfaces.

The per-stage collector must merge worker timings exactly (plain
addition, any grouping), serialize to the ``stages`` block shared by
the service ``/metrics`` and the throughput benchmark record, and
surface through ``repro lint --stats`` / ``repro corpus --stats``.
"""

import datetime as dt

from repro.cli import main
from repro.engine import EngineStats, StageTimings, run_corpus
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=4004)


def write_cert(tmp_path, name="stats.example.com"):
    cert = (
        CertificateBuilder()
        .subject_cn(name)
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns(name)))
        .sign(KEY)
    )
    path = tmp_path / "cert.pem"
    path.write_text(encode_pem(cert.to_der()))
    return str(path), cert


class _Record:
    """Minimal corpus record stand-in."""

    def __init__(self, certificate, issued_at=None):
        self.certificate = certificate
        self.issued_at = issued_at


class TestStageTimings:
    def test_add_accumulates(self):
        timings = StageTimings()
        timings.add("lint", 0.25, 2)
        timings.add("lint", 0.75, 3)
        assert timings.seconds["lint"] == 1.0
        assert timings.items["lint"] == 5

    def test_merge_is_plain_addition(self):
        a = StageTimings(seconds={"decode": 1.0}, items={"decode": 4}, certs=4, bytes=100)
        b = StageTimings(seconds={"decode": 0.5, "lint": 2.0}, items={"lint": 4}, certs=4, bytes=60)
        a.merge(b)
        assert a.seconds == {"decode": 1.5, "lint": 2.0}
        assert a.items == {"decode": 4, "lint": 4}
        assert a.certs == 8
        assert a.bytes == 160

    def test_time_context_manager_records(self):
        timings = StageTimings()
        with timings.time("ingest", items=3):
            pass
        assert timings.seconds["ingest"] >= 0.0
        assert timings.items["ingest"] == 3


class TestEngineStatsRendering:
    def test_to_dict_canonical_order_and_shape(self):
        stats = EngineStats()
        stats.add("sink", 0.1, 1)
        stats.add("ingest", 0.2, 1)
        stats.add("lint", 0.3, 1)
        stats.add("decode", 0.4, 1)
        payload = stats.to_dict()
        assert list(payload["stages"]) == ["ingest", "decode", "lint", "sink"]
        assert payload["stages"]["lint"] == {"seconds": 0.3, "items": 1}
        assert payload["certs"] == 0
        assert "cache" not in payload
        assert "shards" not in payload

    def test_cache_and_shard_gauges_appear_when_recorded(self):
        stats = EngineStats()
        stats.record_cache(hits=2, misses=1)
        stats.record_shards([3, 3, 2], jobs=2)
        payload = stats.to_dict()
        assert payload["cache"] == {"hits": 2, "misses": 1}
        assert payload["shards"] == {"count": 3, "min": 2, "max": 3, "mean": 2.67}
        assert payload["jobs"] == 2

    def test_render_lines_header_and_totals(self):
        stats = EngineStats()
        stats.add("lint", 1.5, 10)
        stats.count_certs(10, 4200)
        lines = stats.render_lines()
        assert lines[0] == "engine stats:"
        assert any("lint:" in line for line in lines)
        assert any("certs: 10" in line and "bytes: 4200" in line for line in lines)

    def test_merge_timings_folds_worker_record(self):
        stats = EngineStats()
        worker = StageTimings(seconds={"lint": 2.0}, items={"lint": 7}, certs=7, bytes=70)
        stats.merge_timings(worker)
        assert stats.timings.seconds["lint"] == 2.0
        assert stats.timings.certs == 7


class TestStatsThreadedThroughRuns:
    def test_corpus_run_populates_every_stage(self):
        records = [
            _Record(
                CertificateBuilder()
                .subject_cn(f"run-{i}.example.com")
                .not_before(dt.datetime(2024, 1, 1))
                .add_extension(
                    subject_alt_name(GeneralName.dns(f"run-{i}.example.com"))
                )
                .sign(KEY)
            )
            for i in range(4)
        ]
        stats = EngineStats()
        run_corpus(records, jobs=1, stats=stats)
        seconds = stats.stage_seconds()
        assert set(seconds) == {"ingest", "decode", "lint", "sink"}
        assert stats.timings.certs == 4
        assert stats.timings.items["lint"] == 4
        assert sum(stats.shard_sizes) == 4
        assert stats.jobs == 1


class TestCliStatsFlag:
    def test_lint_stats_on_stderr(self, tmp_path, capsys):
        path, _cert = write_cert(tmp_path)
        assert main(["lint", path, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "engine stats:" in captured.err
        assert "lint:" in captured.err
        # stdout keeps the parity-tested report format untouched.
        assert "engine stats:" not in captured.out

    def test_lint_without_stats_keeps_stderr_empty(self, tmp_path, capsys):
        path, _cert = write_cert(tmp_path)
        assert main(["lint", path]) == 0
        assert capsys.readouterr().err == ""

    def test_corpus_stats_on_stderr(self, capsys):
        args = ["corpus", "--scale", "0.000005", "--seed", "3", "--stats"]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "engine stats:" in captured.err
        assert "shards:" in captured.err
