"""Tests for the staged :mod:`repro.engine` pipeline."""
