"""Satellite 2: sharding/job-resolution edge cases, executor parity.

``resolve_jobs`` must clamp to the record count, zero-record corpora
must never manufacture empty shard tasks, and a single-record corpus
must produce exactly one non-empty task no matter how many shards are
requested.  Executors are interchangeable: serial and pool runs over
the same tasks merge to byte-identical summaries, and both surface a
worker failure as :class:`ShardError`.
"""

import datetime as dt
import os

import pytest

from repro.engine import PoolExecutor, SerialExecutor, merge_shard_results, run_corpus
from repro.lint import summary_to_json
from repro.lint.runner import CorpusSummary
from repro.lint.parallel import (
    LintPool,
    ShardError,
    ShardTask,
    build_shard_tasks,
    default_shard_count,
    lint_corpus_parallel,
    resolve_jobs,
    shard_bounds,
    usable_cpus,
)
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=4003)


class _Record:
    """Minimal stand-in for a corpus record (certificate + issued_at)."""

    def __init__(self, certificate, issued_at=None):
        self.certificate = certificate
        self.issued_at = issued_at


def make_records(count):
    records = []
    for i in range(count):
        cert = (
            CertificateBuilder()
            .subject_cn(f"edge-{i}.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(
                subject_alt_name(GeneralName.dns(f"edge-{i}.example.com"))
            )
            .sign(KEY)
        )
        records.append(_Record(cert))
    return records


class TestResolveJobs:
    def test_clamped_to_record_count(self):
        assert resolve_jobs(8, total=3) == 3

    def test_not_clamped_when_total_unknown(self):
        assert resolve_jobs(8) == 8

    def test_zero_total_leaves_jobs_unclamped(self):
        # An empty corpus still reports the jobs the caller asked for.
        assert resolve_jobs(8, total=0) == 8

    def test_all_cpus_clamped_by_tiny_corpus(self):
        assert resolve_jobs(None, total=2) == min(usable_cpus(), 2)

    def test_default_follows_scheduler_affinity_not_machine_count(self):
        # In cgroup/affinity-limited environments the scheduler mask is
        # the real parallelism budget, not os.cpu_count().
        try:
            affinity = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            pytest.skip("platform exposes no scheduler affinity mask")
        assert resolve_jobs(None) == affinity


class TestShardBounds:
    def test_empty_input_yields_no_ranges(self):
        assert shard_bounds(0, 4) == []

    def test_empty_input_even_with_zero_shards(self):
        # The zero-record corpus path computes shards=0; that must not
        # trip the shards-must-be-positive guard.
        assert shard_bounds(0, 0) == []

    def test_zero_shards_with_records_still_raises(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)

    def test_more_shards_than_records_never_empty(self):
        bounds = shard_bounds(3, 8)
        assert len(bounds) == 3
        assert all(stop > start for start, stop in bounds)

    def test_default_shard_count_of_empty_corpus_is_zero(self):
        assert default_shard_count(0, 8) == 0


class TestShardTasks:
    def test_single_record_corpus_one_nonempty_task(self):
        records = make_records(1)
        tasks = build_shard_tasks(records, shards=8)
        assert len(tasks) == 1
        assert len(tasks[0].certs_der) == 1

    def test_no_task_is_ever_empty(self):
        records = make_records(5)
        for shards in (1, 2, 5, 9):
            tasks = build_shard_tasks(records, shards=shards)
            assert tasks, f"shards={shards} produced no tasks"
            assert all(task.certs_der for task in tasks)


class TestEmptyCorpus:
    def test_run_corpus_empty_is_a_clean_no_op(self):
        outcome = run_corpus([], jobs=4)
        assert outcome.shards == 0
        assert outcome.reports is None
        assert summary_to_json(outcome.summary) == summary_to_json(
            CorpusSummary()
        )

    def test_run_corpus_empty_with_reports_collects_nothing(self):
        outcome = run_corpus([], jobs=4, collect_reports=True)
        assert outcome.reports == []


class TestJobsExceedRecords:
    def test_pool_run_clamps_workers(self):
        records = make_records(3)
        outcome = lint_corpus_parallel(records, jobs=8, shards=3)
        # Three records, three shards: the pool is provisioned with
        # three workers, not eight.
        assert outcome.jobs == 3
        assert outcome.shards == 3

    def test_tiny_corpus_collapses_to_serial(self):
        records = make_records(2)
        outcome = lint_corpus_parallel(records, jobs=8)
        # Two records fit one shard, which runs inline.
        assert outcome.jobs == 1
        assert outcome.shards == 1


class TestJobsPoolReconcile:
    """An explicit ``jobs`` alongside a shared pool is reconciled, not
    silently ignored: clamped to the pool's worker count and always to
    the record count."""

    def test_explicit_jobs_clamped_to_pool_size(self):
        records = make_records(6)
        with LintPool(2) as pool:
            outcome = lint_corpus_parallel(records, jobs=8, pool=pool, shards=3)
        assert outcome.jobs == 2

    def test_explicit_smaller_jobs_rides_shared_pool(self):
        records = make_records(6)
        with LintPool(2) as pool:
            outcome = lint_corpus_parallel(records, jobs=1, pool=pool, shards=3)
        assert outcome.jobs == 1

    def test_pool_jobs_clamped_to_record_count(self):
        records = make_records(2)
        with LintPool(4) as pool:
            outcome = lint_corpus_parallel(records, pool=pool, shards=2)
        assert outcome.jobs == 2


class TestExecutorParity:
    def test_serial_and_pool_merge_identically(self):
        records = make_records(6)
        tasks = build_shard_tasks(records, shards=3)
        serial = SerialExecutor().run(tasks)
        pool = PoolExecutor(2).run(tasks)
        assert summary_to_json(
            merge_shard_results(serial, 1).summary
        ) == summary_to_json(merge_shard_results(pool, 2).summary)

    def test_serial_executor_raises_shard_error(self):
        bad = ShardTask(index=0, certs_der=(b"\x30\x00",), issued_at=(None,))
        with pytest.raises(ShardError):
            SerialExecutor().run([bad])

    def test_pool_executor_raises_shard_error(self):
        bad = ShardTask(index=0, certs_der=(b"\x30\x00",), issued_at=(None,))
        with pytest.raises(ShardError):
            PoolExecutor(2).run([bad])
