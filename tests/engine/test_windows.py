"""Unit behavior of the windowed summary algebra and alert policy."""

import datetime as dt

import pytest

from repro.engine import (
    Alert,
    AlertPolicy,
    WindowConfig,
    WindowedSummary,
)
from repro.engine.windows import UNKNOWN_EPOCH, WindowStats
from repro.lint import CorpusSummary


class TestWindowConfig:
    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ValueError):
            WindowConfig(index_window=0)

    def test_rejects_unknown_epochs(self):
        with pytest.raises(ValueError):
            WindowConfig(epoch="decade")

    def test_epoch_keys(self):
        when = dt.datetime(2019, 3, 14)
        assert WindowConfig(epoch="year").epoch_key(when) == "2019"
        assert WindowConfig(epoch="month").epoch_key(when) == "2019-03"
        assert WindowConfig().epoch_key(None) == UNKNOWN_EPOCH


def _stats(total, noncompliant):
    """A synthetic window with only the headline counters set."""
    stats = WindowStats()
    stats.summary = CorpusSummary(total=total, noncompliant=noncompliant)
    return stats


def _windowed(rates, width=100, per_window=100):
    """Synthetic windows: one per (total-implied) noncompliance rate."""
    windowed = WindowedSummary(WindowConfig(index_window=width))
    for window_id, rate in enumerate(rates):
        windowed.by_index[window_id] = _stats(
            per_window, round(per_window * rate)
        )
    return windowed


class TestWindowQueries:
    def test_epoch_keys_sort_unknown_last(self):
        windowed = WindowedSummary()
        for key in ("2024", UNKNOWN_EPOCH, "2013"):
            windowed.by_epoch[key] = WindowStats()
        assert windowed.epoch_keys() == ["2013", "2024", UNKNOWN_EPOCH]

    def test_completed_windows_need_full_coverage(self):
        windowed = _windowed([0.1, 0.1, 0.1], width=100)
        assert windowed.completed_index_windows(199) == [0]
        assert windowed.completed_index_windows(200) == [0, 1]
        assert windowed.completed_index_windows(10_000) == [0, 1, 2]

    def test_trailing_baseline_merges_up_to_depth_windows(self):
        windowed = _windowed([0.0, 0.1, 0.2, 0.3])
        baseline = windowed.trailing_baseline(3, depth=2)
        assert baseline.total == 200
        assert baseline.summary.noncompliant == 10 + 20
        shallow = windowed.trailing_baseline(1, depth=4)
        assert shallow.total == 100


class TestAlertPolicy:
    def test_quiet_stream_raises_nothing(self):
        windowed = _windowed([0.10, 0.11, 0.09, 0.10, 0.12])
        policy = AlertPolicy(threshold=0.15, depth=4)
        assert policy.evaluate(windowed, 4) == []

    def test_rate_spike_raises_a_noncompliance_alert(self):
        windowed = _windowed([0.10, 0.10, 0.10, 0.10, 0.40])
        policy = AlertPolicy(threshold=0.15, depth=4)
        alerts = policy.evaluate(windowed, 4)
        assert [a.metric for a in alerts] == ["noncompliance_rate"]
        alert = alerts[0]
        assert alert.window_id == 4
        assert alert.value == pytest.approx(0.40)
        assert alert.baseline == pytest.approx(0.10)
        assert alert.delta == pytest.approx(0.30)
        assert "up" in alert.describe()

    def test_small_windows_are_ignored(self):
        windowed = _windowed([0.0, 1.0], per_window=4)
        policy = AlertPolicy(threshold=0.15, depth=4, min_total=16)
        assert policy.evaluate(windowed, 1) == []

    def test_small_baselines_are_ignored(self):
        windowed = WindowedSummary(WindowConfig(index_window=100))
        windowed.by_index[0] = _stats(4, 0)
        windowed.by_index[1] = _stats(100, 40)
        policy = AlertPolicy(threshold=0.15, depth=4, min_total=16)
        assert policy.evaluate(windowed, 1) == []

    def test_type_mix_shift_raises_per_type_alerts(self):
        from repro.lint import NoncomplianceType

        windowed = WindowedSummary(WindowConfig(index_window=100))
        old_mix = CorpusSummary(
            total=100,
            noncompliant=50,
            per_type={NoncomplianceType.INVALID_CHARACTER: 50},
        )
        new_mix = CorpusSummary(
            total=100,
            noncompliant=50,
            per_type={NoncomplianceType.BAD_NORMALIZATION: 50},
        )
        windowed.by_index[0] = WindowStats(summary=old_mix)
        windowed.by_index[1] = WindowStats(summary=new_mix)
        alerts = AlertPolicy(threshold=0.15, depth=4).evaluate(windowed, 1)
        metrics = {a.metric for a in alerts}
        assert (
            f"type_share:{NoncomplianceType.INVALID_CHARACTER.value}"
            in metrics
        )
        assert (
            f"type_share:{NoncomplianceType.BAD_NORMALIZATION.value}"
            in metrics
        )

    def test_alerts_are_plain_values(self):
        alert = Alert(3, "noncompliance_rate", 0.4, 0.1)
        assert alert == Alert(3, "noncompliance_rate", 0.4, 0.1)
        assert alert.delta == pytest.approx(0.3)
