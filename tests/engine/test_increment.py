"""``Engine.run_increment``: the pull-based core of the incremental
engine.  Folding the corpus in bounded batches — in any decomposition,
at any job count — must reproduce the one-shot batch summary byte for
byte, because both sides run the identical merge algebra."""

import datetime as dt

import pytest

from repro.ct import CorpusGenerator
from repro.engine import (
    Engine,
    EngineStats,
    WindowConfig,
    WindowedSummary,
    increment_pairs,
    run_corpus,
    run_increment,
)
from repro.lint import summary_to_json


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(seed=11, scale=0.00001).generate()


@pytest.fixture(scope="module")
def one_shot(corpus):
    return summary_to_json(run_corpus(corpus, jobs=1).summary)


def _fold_in_batches(corpus, batch_size, jobs):
    engine = Engine()
    window = WindowedSummary(WindowConfig(index_window=100))
    records = corpus.records
    for start in range(0, len(records), batch_size):
        batch = records[start : start + batch_size]
        engine.run_increment(batch, base_index=start, jobs=jobs, window=window)
    return window


class TestIncrementEquivalence:
    @pytest.mark.parametrize("batch_size", [37, 64, 1000])
    def test_any_batch_decomposition_matches_one_shot(
        self, corpus, one_shot, batch_size
    ):
        window = _fold_in_batches(corpus, batch_size, jobs=1)
        assert window.entries == len(corpus.records)
        assert summary_to_json(window.total.summary) == one_shot

    def test_parallel_increments_match_one_shot(self, corpus, one_shot):
        window = _fold_in_batches(corpus, 128, jobs=4)
        assert summary_to_json(window.total.summary) == one_shot

    def test_window_state_round_trips_byte_identically(self, corpus):
        window = _fold_in_batches(corpus, 64, jobs=1)
        clone = WindowedSummary.from_dict(window.to_dict())
        assert clone.to_json() == window.to_json()


class TestBatchShapes:
    def test_increment_pairs_accepts_corpus_records(self, corpus):
        pairs = increment_pairs(corpus.records[:3])
        for record, (der, issued_at) in zip(corpus.records, pairs):
            assert der == record.certificate.to_der()
            assert issued_at == record.issued_at

    def test_increment_pairs_accepts_a_records_wrapper(self, corpus):
        assert increment_pairs(corpus)[:3] == increment_pairs(
            corpus.records[:3]
        )

    def test_increment_pairs_accepts_der_entries(self, corpus):
        class Entry:
            def __init__(self, der, issued_at):
                self.der = der
                self.issued_at = issued_at

        record = corpus.records[0]
        der = record.certificate.to_der()
        pairs = increment_pairs([Entry(der, record.issued_at)])
        assert pairs == [(der, record.issued_at)]

    def test_increment_pairs_accepts_raw_pairs(self):
        when = dt.datetime(2021, 1, 1)
        assert increment_pairs([(b"\x30\x00", when)]) == [(b"\x30\x00", when)]

    def test_all_shapes_lint_identically(self, corpus):
        records = corpus.records[:40]
        reference = run_increment(records, jobs=1)
        raw = run_increment(increment_pairs(records), jobs=1)
        assert summary_to_json(raw.summary) == summary_to_json(
            reference.summary
        )


class TestOutcomeContract:
    def test_empty_batch_is_a_zero_summary(self):
        outcome = run_increment([], jobs=1)
        assert outcome.summary.total == 0
        assert outcome.reports is None

    def test_reports_stay_private_to_the_fold(self, corpus):
        window = WindowedSummary(WindowConfig(index_window=100))
        outcome = run_increment(
            corpus.records[:20], jobs=1, window=window
        )
        assert outcome.reports is None
        assert window.entries == 20

    def test_collect_reports_rides_alongside_the_fold(self, corpus):
        window = WindowedSummary(WindowConfig(index_window=100))
        outcome = run_increment(
            corpus.records[:20], jobs=1, window=window, collect_reports=True
        )
        assert len(outcome.reports) == 20

    def test_base_index_keys_the_tumbling_windows(self, corpus):
        window = WindowedSummary(WindowConfig(index_window=100))
        run_increment(
            corpus.records[:20], base_index=250, jobs=1, window=window
        )
        assert window.index_windows() == [2]
        assert window.by_index[2].first_index == 250
        assert window.by_index[2].last_index == 269

    def test_fold_stage_is_recorded(self, corpus):
        stats = EngineStats()
        window = WindowedSummary(WindowConfig(index_window=100))
        Engine(stats).run_increment(corpus.records[:20], jobs=1, window=window)
        recorded = stats.to_dict()["stages"]
        assert "fold" in recorded
        assert recorded["fold"]["items"] == 20

    def test_no_fold_stage_without_a_window(self, corpus):
        stats = EngineStats()
        Engine(stats).run_increment(corpus.records[:20], jobs=1)
        assert "fold" not in stats.to_dict()["stages"]
