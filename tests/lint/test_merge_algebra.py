"""Property tests for the ``CorpusSummary.merge`` algebra.

The incremental engine's windowed aggregation silently depends on
``merge`` being a commutative monoid over summaries: tumbling windows
fold batches in arrival order, checkpoint resume replays a prefix, and
the equivalence proofs compare against one-shot runs that sharded the
same records completely differently.  These properties pin all three
laws — identity, commutativity, associativity — over randomized shard
splits of real lint reports, in the canonical byte-comparison form
(:func:`summary_to_json`).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ct import CorpusGenerator
from repro.engine import run_corpus
from repro.lint import CorpusSummary, summary_to_json


@pytest.fixture(scope="module")
def reports():
    corpus = CorpusGenerator(seed=23, scale=0.00001).generate()
    outcome = run_corpus(corpus, jobs=1, collect_reports=True)
    return outcome.reports


@pytest.fixture(scope="module")
def reference(reports):
    return summary_to_json(CorpusSummary.from_reports(reports))


def _summaries_for(reports, cut_points):
    """Per-shard summaries over the split induced by ``cut_points``."""
    bounds = [0, *sorted(cut_points), len(reports)]
    shards = []
    for start, stop in zip(bounds, bounds[1:]):
        shards.append(CorpusSummary.from_reports(reports[start:stop]))
    return shards


@st.composite
def cut_point_sets(draw, max_size=6):
    count = draw(st.integers(min_value=0, max_value=max_size))
    return draw(
        st.sets(
            st.integers(min_value=0, max_value=340),
            min_size=count,
            max_size=count,
        )
    )


class TestMergeLaws:
    @settings(max_examples=25, deadline=None)
    @given(cuts=cut_point_sets())
    def test_any_shard_split_merges_to_the_sequential_summary(
        self, reports, reference, cuts
    ):
        shards = _summaries_for(reports, cuts)
        assert summary_to_json(CorpusSummary.merged(shards)) == reference

    @settings(max_examples=25, deadline=None)
    @given(cuts=cut_point_sets(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_commutativity_any_permutation_merges_identically(
        self, reports, reference, cuts, seed
    ):
        import random

        shards = _summaries_for(reports, cuts)
        random.Random(seed).shuffle(shards)
        assert summary_to_json(CorpusSummary.merged(shards)) == reference

    @settings(max_examples=25, deadline=None)
    @given(
        cuts=cut_point_sets(max_size=5),
        pivot=st.integers(min_value=0, max_value=6),
    )
    def test_associativity_any_grouping_merges_identically(
        self, reports, reference, cuts, pivot
    ):
        shards = _summaries_for(reports, cuts)
        pivot = min(pivot, len(shards))
        left = CorpusSummary.merged(shards[:pivot])
        right = CorpusSummary.merged(shards[pivot:])
        assert summary_to_json(left.merge(right)) == reference

    @settings(max_examples=10, deadline=None)
    @given(cuts=cut_point_sets(max_size=3))
    def test_identity_empty_summary_is_neutral_on_both_sides(
        self, reports, reference, cuts
    ):
        shards = _summaries_for(reports, cuts)
        folded = CorpusSummary()
        for shard in shards:
            folded.merge(shard)
            folded.merge(CorpusSummary())
        seeded = CorpusSummary()
        seeded.merge(CorpusSummary())
        for shard in shards:
            seeded.merge(shard)
        assert summary_to_json(folded) == reference
        assert summary_to_json(seeded) == reference
