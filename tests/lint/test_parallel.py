"""Tests for the sharded parallel corpus-lint pipeline.

Covers the determinism guarantee (``--jobs N`` byte-identical to
``--jobs 1`` and to the classic sequential path), exact-merge algebra
(commutativity/associativity), deterministic sharding, worker-crash
surfacing, and the per-worker registry cache.
"""

import datetime as dt
import json

import pytest

from repro.ct import CorpusGenerator
from repro.lint import (
    CorpusSummary,
    REGISTRY,
    ShardError,
    lint_corpus_parallel,
    run_lints,
    shard_bounds,
    summarize,
    summarize_corpus_parallel,
    summary_to_json,
)
from repro.lint.framework import LintRegistry
from repro.lint.parallel import (
    MIN_SHARD_SIZE,
    build_shard_tasks,
    default_shard_count,
    lint_shard,
    resolve_jobs,
)
from repro.lint.serialization import report_to_dict
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=77)
WHEN = dt.datetime(2024, 4, 1)


@pytest.fixture(scope="module")
def corpus():
    # ~170 records: enough to exercise multiple shards, small enough to
    # lint three times in a few seconds.
    return CorpusGenerator(seed=11, scale=1 / 200000).generate()


def _cert(cn, san=None):
    builder = CertificateBuilder().subject_cn(cn).not_before(WHEN)
    builder.add_extension(subject_alt_name(GeneralName.dns(san or cn)))
    return builder.sign(KEY)


class TestShardBounds:
    def test_partition_covers_everything_contiguously(self):
        for total in (0, 1, 5, 64, 1000, 1001):
            for shards in (1, 2, 3, 7, 16):
                bounds = shard_bounds(total, shards)
                flat = [i for start, stop in bounds for i in range(start, stop)]
                assert flat == list(range(total))

    def test_near_equal_sizes(self):
        bounds = shard_bounds(10, 3)
        sizes = [stop - start for start, stop in bounds]
        assert sizes == [4, 3, 3]

    def test_never_produces_empty_shards(self):
        assert len(shard_bounds(3, 16)) == 3
        assert shard_bounds(0, 4) == []

    def test_deterministic(self):
        assert shard_bounds(1000, 7) == shard_bounds(1000, 7)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 4)

    def test_default_shard_count_respects_min_size(self):
        # 100 records at 8 jobs would mean 32 shards of ~3 certs; the
        # heuristic clamps to keep shards at least MIN_SHARD_SIZE.
        assert default_shard_count(100, 8) <= max(1, 100 // MIN_SHARD_SIZE)
        assert default_shard_count(0, 8) == 0
        assert default_shard_count(10_000, 4) == 16

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


class TestMergeAlgebra:
    def _summaries(self):
        reports = [
            [run_lints(_cert("clean.example.com"))],
            [run_lints(_cert("bad\x00.example.com"))] * 2,
            [run_lints(_cert("ok.example.org")), run_lints(_cert("x\x00y.example.net"))],
        ]
        return [summarize(r) for r in reports]

    def test_merge_commutative(self):
        a1, b1, _ = self._summaries()
        a2, b2, _ = self._summaries()
        ab = CorpusSummary.merged([a1, b1])
        ba = CorpusSummary.merged([b2, a2])
        assert ab == ba
        assert summary_to_json(ab) == summary_to_json(ba)

    def test_merge_associative(self):
        a, b, c = self._summaries()
        a2, b2, c2 = self._summaries()
        left = CorpusSummary.merged([CorpusSummary.merged([a, b]), c])
        right = CorpusSummary.merged([a2, CorpusSummary.merged([b2, c2])])
        assert left == right
        assert summary_to_json(left) == summary_to_json(right)

    def test_merge_identity(self):
        a, _, _ = self._summaries()
        a2, _, _ = self._summaries()
        assert CorpusSummary().merge(a) == a2

    def test_merge_equals_streaming(self):
        reports = [
            run_lints(_cert("clean.example.com")),
            run_lints(_cert("bad\x00.example.com")),
            run_lints(_cert("also\x00bad.example.com")),
        ]
        whole = summarize(reports)
        sharded = CorpusSummary.merged(
            [summarize(reports[:1]), summarize(reports[1:])]
        )
        assert whole == sharded
        assert summary_to_json(whole) == summary_to_json(sharded)

    def test_top_lints_tiebreak_identical_after_merge(self):
        reports = [
            run_lints(_cert("bad\x00.example.com")),
            run_lints(_cert("worse\x00.example.com")),
        ]
        whole = summarize(reports)
        merged = CorpusSummary.merged(
            [summarize(reports[1:]), summarize(reports[:1])]
        )
        assert whole.top_lints(50) == merged.top_lints(50)


class TestDeterminism:
    def test_jobs4_byte_identical_to_jobs1(self, corpus):
        # The ISSUE acceptance check: same seed, different job counts,
        # byte-for-byte identical summaries.
        one = lint_corpus_parallel(corpus, jobs=1)
        four = lint_corpus_parallel(corpus, jobs=4)
        assert summary_to_json(one.summary) == summary_to_json(four.summary)

    def test_pipeline_matches_classic_sequential_path(self, corpus):
        from repro.analysis import lint_corpus

        classic = summarize(lint_corpus(corpus, jobs=1))
        piped = summarize_corpus_parallel(corpus, jobs=2)
        assert summary_to_json(classic) == summary_to_json(piped)

    def test_reports_come_back_in_corpus_order(self, corpus):
        seq = lint_corpus_parallel(corpus, jobs=1, collect_reports=True)
        par = lint_corpus_parallel(corpus, jobs=2, collect_reports=True)
        assert len(seq.reports) == len(par.reports) == len(corpus.records)
        for left, right in zip(seq.reports, par.reports):
            assert json.dumps(report_to_dict(left), sort_keys=True) == json.dumps(
                report_to_dict(right), sort_keys=True
            )

    def test_shard_count_does_not_change_summary(self, corpus):
        a = lint_corpus_parallel(corpus, jobs=1, shards=1)
        b = lint_corpus_parallel(corpus, jobs=1, shards=7)
        assert summary_to_json(a.summary) == summary_to_json(b.summary)

    def test_empty_corpus(self):
        outcome = lint_corpus_parallel([], jobs=4, collect_reports=True)
        assert outcome.summary.total == 0
        assert outcome.reports == []
        assert outcome.shards == 0

    def test_respects_effective_dates_flag(self, corpus):
        with_dates = summarize_corpus_parallel(corpus, jobs=2)
        without = summarize_corpus_parallel(
            corpus, jobs=2, respect_effective_dates=False
        )
        assert without.noncompliant >= with_dates.noncompliant


class _BrokenCert:
    """Stands in for a certificate whose DER cannot be parsed."""

    def to_der(self) -> bytes:
        return b"\x30\x03garbage-that-is-not-der"


class TestWorkerCrash:
    def _poisoned(self, corpus):
        import copy

        poisoned = copy.copy(corpus)
        poisoned.records = list(corpus.records)
        victim = copy.copy(poisoned.records[len(poisoned.records) // 2])
        victim.certificate = _BrokenCert()
        poisoned.records[len(poisoned.records) // 2] = victim
        return poisoned

    def test_shard_failure_surfaces_clear_error_parallel(self, corpus):
        with pytest.raises(ShardError) as excinfo:
            lint_corpus_parallel(self._poisoned(corpus), jobs=2, shards=4)
        message = str(excinfo.value)
        assert "shard" in message
        assert "parallel lint pipeline" in message

    def test_shard_failure_surfaces_clear_error_inline(self, corpus):
        with pytest.raises(ShardError) as excinfo:
            lint_corpus_parallel(self._poisoned(corpus), jobs=1, shards=4)
        assert excinfo.value.index >= 0

    def test_lint_shard_never_raises(self, corpus):
        tasks = build_shard_tasks(self._poisoned(corpus), shards=2)
        results = [lint_shard(task) for task in tasks]
        assert any(r.error for r in results)
        failed = next(r for r in results if r.error)
        # The structured failure carries the worker-side traceback.
        assert "Traceback" in failed.error


class TestRegistryCache:
    def test_snapshot_is_cached(self):
        assert REGISTRY.snapshot() is REGISTRY.snapshot()
        assert list(REGISTRY.snapshot()) == REGISTRY.all()

    def test_snapshot_invalidated_on_register(self):
        from repro.lint.framework import (
            FunctionLint,
            LintMetadata,
            NoncomplianceType,
            RFC5280_DATE,
            Severity,
            Source,
        )

        registry = LintRegistry()
        before = registry.snapshot()
        lint = FunctionLint(
            LintMetadata(
                name="e_test_snapshot_invalidation",
                description="",
                citation="",
                source=Source.RFC5280,
                severity=Severity.ERROR,
                nc_type=NoncomplianceType.ILLEGAL_FORMAT,
                effective_date=RFC5280_DATE,
            ),
            lambda cert: True,
            lambda cert: (True, ""),
        )
        registry.register(lint)
        after = registry.snapshot()
        assert before == ()
        assert after == (lint,)


class TestLintPool:
    """The reusable pool handle (PR 2): shared by the batch pipeline
    and the lint service instead of a per-call multiprocessing.Pool."""

    def test_corpus_results_identical_through_a_reused_pool(self, corpus):
        from repro.lint.parallel import LintPool

        baseline = summary_to_json(lint_corpus_parallel(corpus, jobs=1).summary)
        with LintPool(jobs=2) as pool:
            first = lint_corpus_parallel(corpus, pool=pool)
            second = lint_corpus_parallel(corpus, pool=pool)
            assert summary_to_json(first.summary) == baseline
            assert summary_to_json(second.summary) == baseline
            assert first.jobs == 2

    def test_submit_json_matches_cli_serialization(self):
        from repro.lint import report_to_json
        from repro.lint.parallel import LintPool, lint_ders_to_json

        certs = [_cert("pool-a.example.com"), _cert("bad\x00pool.example.com")]
        ders = tuple(c.to_der() for c in certs)
        expected = [
            report_to_json(run_lints(c), c) for c in certs
        ]
        # Inline worker function...
        assert lint_ders_to_json(ders) == expected
        # ...and through a real worker process.
        with LintPool(jobs=1) as pool:
            assert pool.submit_json(ders).result(timeout=60) == expected

    def test_shutdown_is_idempotent_and_reentrant(self):
        from repro.lint.parallel import LintPool

        pool = LintPool(jobs=1)
        pool.shutdown()  # never started: no executor to tear down
        pool.submit_json((_cert("re.example.com").to_der(),)).result(timeout=60)
        pool.shutdown()
        pool.shutdown()
