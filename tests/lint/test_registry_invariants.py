"""Registry self-test: the invariants the corpus results depend on.

The paper's Tables 1/11 assume 95 constraint rules, 50 of them new, each
registered exactly once with a citation that resolves to its
:class:`ConstraintRule` row.  These tests run at import time over the
*real* registry — both directly and through the
``repro.staticcheck.registry`` checker — so a drive-by edit to a lint
module cannot silently desynchronize the registry from the paper's
rule table.
"""

import datetime as dt

import pytest

from repro.lint import REGISTRY
from repro.lint.constraints import CONSTRAINT_RULES, rules_for_lint
from repro.lint.framework import FunctionLint, Severity
from repro.staticcheck import SourceIndex, check_registry_invariants


@pytest.fixture(scope="module")
def lints():
    return REGISTRY.snapshot()


class TestRegistryShape:
    def test_unique_names(self, lints):
        names = [lint.metadata.name for lint in lints]
        assert len(names) == len(set(names))

    def test_rule_count_matches_paper(self, lints):
        assert len(lints) == 95
        assert len(CONSTRAINT_RULES) == 95

    def test_new_lint_count_matches_paper(self, lints):
        assert sum(1 for lint in lints if lint.metadata.new) == 50

    def test_registry_introspection_hooks_agree(self, lints):
        assert tuple(REGISTRY) == lints
        assert REGISTRY.names() == tuple(l.metadata.name for l in lints)
        assert REGISTRY.items() == tuple(
            (l.metadata.name, l) for l in lints
        )


class TestCitations:
    def test_every_lint_resolves_to_a_constraint_rule(self, lints):
        for lint in lints:
            rule = rules_for_lint(lint.metadata.name)
            assert rule.lint_name == lint.metadata.name

    def test_rule_table_and_registry_are_one_to_one(self, lints):
        assert {r.lint_name for r in CONSTRAINT_RULES} == {
            l.metadata.name for l in lints
        }

    def test_new_flag_agrees_with_rule_table(self, lints):
        for lint in lints:
            assert rules_for_lint(lint.metadata.name).new is lint.metadata.new

    def test_source_document_agrees(self, lints):
        for lint in lints:
            rule = rules_for_lint(lint.metadata.name)
            assert rule.source_document == lint.metadata.source.value


class TestMetadataConsistency:
    def test_every_lint_is_a_function_lint_with_metadata(self, lints):
        for lint in lints:
            assert isinstance(lint, FunctionLint)
            assert lint.metadata.citation
            assert isinstance(lint.metadata.effective_date, dt.datetime)

    def test_families_are_frozensets_or_none(self, lints):
        for lint in lints:
            assert lint.families is None or isinstance(lint.families, frozenset)

    def test_severity_prefix_mismatches_are_pinned(self, lints):
        # One deliberate exception: the CA/B CN-in-SAN rule keeps Zlint's
        # historical ``w_`` name although the BRs make it a MUST.  The
        # staticcheck baseline accepts it; anything else is a regression.
        mismatched = {
            lint.metadata.name
            for lint in lints
            if (lint.metadata.name.startswith("e_")
                and lint.metadata.severity is not Severity.ERROR)
            or (lint.metadata.name.startswith("w_")
                and lint.metadata.severity is Severity.ERROR)
        }
        assert mismatched == {"w_cab_subject_common_name_not_in_san"}


class TestInvariantChecker:
    """The staticcheck registry checker over the live registry."""

    @pytest.fixture(scope="class")
    def findings(self, lints):
        return check_registry_invariants(
            lints, SourceIndex(), resolve_rule=rules_for_lint
        )

    def test_only_the_accepted_findings_fire(self, findings):
        # The three effective-date floors and the severity-prefix
        # exception above are reviewed and baselined; any new finding
        # here means the registry drifted.
        assert sorted((f.anchor, f.message.split(" ", 1)[0]) for f in findings) == [
            ("e_dns_label_hyphen_at_edge", "effective_date"),
            ("e_smtp_utf8_mailbox_not_utf8string", "effective_date"),
            ("w_cab_subject_common_name_not_in_san", "name"),
            ("w_rfc_ext_cp_explicit_text_not_utf8", "effective_date"),
        ]

    def test_no_duplicate_or_unresolvable_citation_findings(self, findings):
        for finding in findings:
            assert "duplicate" not in finding.message
            assert "does not resolve" not in finding.message
