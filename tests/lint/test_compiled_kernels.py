"""Unit tests for the fused char-class scan kernels.

The compiled dispatch (:mod:`repro.lint.compiled`) reduces every lint
trigger to bitwise tests against masks produced by a handful of scan
kernels.  The equivalence suite proves the end-to-end contract; these
tests pin the kernels themselves — per-bit semantics, the ASCII fast
path against the generic interval walk, memoization, and the shape
masks for DNS names, mailboxes, URIs, and A-labels.
"""

import pytest

from repro.lint import compiled as C
from repro.lint.compiled import BIT_BY_NAME, PSEUDO_BITS, char_mask, scan_mask
from repro.uni.intervals import ATOM_BITS, ATOM_INTERVALS

#: OR of every interval-atom bit — masks scan results down to the
#: character-membership plane, dropping value-derived pseudo bits.
ATOM_PLANE = 0
for _bit in ATOM_BITS.values():
    ATOM_PLANE |= _bit


def bit(name: str) -> int:
    return BIT_BY_NAME[name]


class TestScanMask:
    @pytest.mark.parametrize(
        ("text", "atom"),
        [
            ("ab\x07c", "CONTROL"),
            ("a b", "WHITESPACE"),
            ("a\x7fb", "DEL"),
            ("a�b", "REPLACEMENT"),
            ("a‮b", "BIDI"),
            ("a​b", "INVISIBLE_NON_BIDI"),
            ("münchen", "NON_ASCII"),
            ("under_score", "NON_LDH"),
            ("under_score", "NON_PRINTABLESTRING"),
            ("http://x", "COLON_OR_SLASH"),
        ],
    )
    def test_atom_bit_fires(self, text, atom):
        assert scan_mask(text) & bit(atom)

    def test_clean_ldh_string_keeps_atom_plane_clear(self):
        # Pure LDH ASCII hits no character atom except the LDH-safe
        # plane; only value-derived pseudo bits may fire.
        assert scan_mask("example-1.com") & ATOM_PLANE & ~bit("NON_LDH") == 0

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("a" * 64, ()),
            ("a" * 65, ("LEN_GT_64",)),
            ("a" * 129, ("LEN_GT_64", "LEN_GT_128")),
            ("a" * 201, ("LEN_GT_64", "LEN_GT_128", "LEN_GT_200")),
        ],
    )
    def test_length_thresholds(self, text, expected):
        mask = scan_mask(text)
        for name in ("LEN_GT_64", "LEN_GT_128", "LEN_GT_200"):
            assert bool(mask & bit(name)) == (name in expected)

    def test_country_shape_bits(self):
        assert not scan_mask("US") & bit("LEN_NE_2")
        assert not scan_mask("US") & bit("NOT_UPPER")
        assert scan_mask("USA") & bit("LEN_NE_2")
        assert scan_mask("us") & bit("NOT_UPPER")

    @pytest.mark.parametrize(
        "text", ["", "plain", "ümlaut‮", "mixed-ascii-\U0001f600", "\x00:\x7f"]
    )
    def test_fused_scan_matches_per_char_walk(self, text):
        reference = 0
        for ch in set(text):
            reference |= char_mask(ch)
        assert scan_mask(text) & ATOM_PLANE == reference

    def test_scan_mask_memoized_per_string(self):
        text = "memo-probe-é"
        first = scan_mask(text)
        assert C._STRING_MASKS[text] == first
        assert scan_mask(text) == first


class TestShapeMasks:
    def test_dns_shape_bits(self):
        assert C._dns_shape_mask("a" * 64 + ".com") & bit("DNS_LABEL_GT_63")
        assert C._dns_shape_mask("a..b") & bit("DNS_EMPTY_LABEL")
        assert C._dns_shape_mask("-f.com") & bit("DNS_HYPHEN_EDGE")
        assert C._dns_shape_mask("f-.com") & bit("DNS_HYPHEN_EDGE")
        long_name = ".".join(["a" * 63] * 5)
        assert C._dns_shape_mask(long_name) & bit("DNS_NAME_GT_253")
        # A single trailing dot is a root label, not an empty label.
        clean = C._dns_shape_mask("example.com.")
        for name in (
            "DNS_LABEL_GT_63",
            "DNS_NAME_GT_253",
            "DNS_EMPTY_LABEL",
            "DNS_HYPHEN_EDGE",
        ):
            assert not clean & bit(name)

    @pytest.mark.parametrize(
        ("value", "bad"),
        [
            ("user@example.com", False),
            ("no-at-sign", True),
            ("@example.com", True),
            ("user@", True),
            ("a@b@c", True),
        ],
    )
    def test_email_shape(self, value, bad):
        assert bool(C._email_shape_mask(value) & bit("SHAPE_BAD")) == bad

    @pytest.mark.parametrize(
        ("value", "bad"),
        [
            ("http://example.com", False),
            ("ldap://x/y", False),
            ("no-colon", True),
            ("1http://x", True),
            (":missing-scheme", True),
        ],
    )
    def test_uri_shape(self, value, bad):
        assert bool(C._uri_shape_mask(value) & bit("SHAPE_BAD")) == bad

    def test_xn_label_masks(self):
        clean = C._xn_label_mask("xn--mnchen-3ya")
        assert clean & bit("SCOPE_NONEMPTY")
        for name in (
            "XN_DECODE_BAD",
            "XN_UNPERMITTED",
            "XN_NOT_NFC",
            "XN_ROUNDTRIP_BAD",
        ):
            assert not clean & bit(name)
        assert C._xn_label_mask("xn--!!") & bit("XN_DECODE_BAD")
        # Emoji decode fine but are IDNA2008-unpermitted.
        assert C._xn_label_mask("xn--ls8h") & bit("XN_UNPERMITTED")


class TestBitLayout:
    def test_atoms_and_pseudo_bits_are_disjoint_powers_of_two(self):
        bits = list(ATOM_BITS.values()) + list(PSEUDO_BITS.values())
        assert len(bits) == len(set(bits))
        for value in bits:
            assert value and value & (value - 1) == 0

    def test_pseudo_bits_continue_the_interval_plane(self):
        assert min(PSEUDO_BITS.values()) == max(ATOM_BITS.values()) << 1

    def test_interval_tables_are_sorted_and_disjoint(self):
        for atom, intervals in ATOM_INTERVALS.items():
            previous_end = -1
            for start, end in intervals:
                assert start <= end, atom
                assert start > previous_end, atom
                previous_end = end
