"""Tests for the lint framework, registry shape, and effective dates."""

import datetime as dt

from repro.lint import (
    CABF_BR_DATE,
    LintStatus,
    NoncomplianceType,
    REGISTRY,
    RFC5280_DATE,
    Severity,
    run_lints,
)
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=99)


def clean_cert():
    return (
        CertificateBuilder()
        .subject_cn("clean.example.com")
        .add_extension(subject_alt_name(GeneralName.dns("clean.example.com")))
        .not_before(dt.datetime(2024, 2, 1))
        .validity_days(90)
        .sign(KEY)
    )


class TestRegistryShape:
    """The registry must match the paper's Table 1 exactly."""

    def test_total_95(self):
        assert len(REGISTRY) == 95

    def test_new_50(self):
        assert len(REGISTRY.new_lints()) == 50

    def test_invalid_character_22_10(self):
        lints = REGISTRY.by_type(NoncomplianceType.INVALID_CHARACTER)
        assert len(lints) == 22
        assert sum(1 for l in lints if l.metadata.new) == 10

    def test_bad_normalization_4_3(self):
        lints = REGISTRY.by_type(NoncomplianceType.BAD_NORMALIZATION)
        assert len(lints) == 4
        assert sum(1 for l in lints if l.metadata.new) == 3

    def test_illegal_format_17_0(self):
        lints = REGISTRY.by_type(NoncomplianceType.ILLEGAL_FORMAT)
        assert len(lints) == 17
        assert sum(1 for l in lints if l.metadata.new) == 0

    def test_invalid_encoding_48_37(self):
        lints = REGISTRY.by_type(NoncomplianceType.INVALID_ENCODING)
        assert len(lints) == 48
        assert sum(1 for l in lints if l.metadata.new) == 37

    def test_invalid_structure_2_0(self):
        lints = REGISTRY.by_type(NoncomplianceType.INVALID_STRUCTURE)
        assert len(lints) == 2
        assert sum(1 for l in lints if l.metadata.new) == 0

    def test_discouraged_field_2_0(self):
        lints = REGISTRY.by_type(NoncomplianceType.DISCOURAGED_FIELD)
        assert len(lints) == 2
        assert sum(1 for l in lints if l.metadata.new) == 0

    def test_severity_prefix_mostly_consistent(self):
        # e_* lints are ERROR; w_* are WARN, with the paper's one known
        # exception (w_cab_subject_common_name_not_in_san is a MUST).
        exceptions = {"w_cab_subject_common_name_not_in_san"}
        for lint in REGISTRY.all():
            name, severity = lint.metadata.name, lint.metadata.severity
            if name in exceptions:
                assert severity is Severity.ERROR
            elif name.startswith("e_"):
                assert severity is Severity.ERROR, name
            elif name.startswith("w_"):
                assert severity is Severity.WARN, name

    def test_all_have_effective_dates(self):
        for lint in REGISTRY.all():
            assert lint.metadata.effective_date is not None

    def test_all_have_citations(self):
        for lint in REGISTRY.all():
            assert lint.metadata.citation


class TestTable11Lints:
    """Every lint named in the paper's Table 11 must exist with the right type."""

    TABLE11 = {
        "w_rfc_ext_cp_explicit_text_not_utf8": NoncomplianceType.INVALID_ENCODING,
        "w_cab_subject_common_name_not_in_san": NoncomplianceType.INVALID_STRUCTURE,
        "e_rfc_dns_idn_a2u_unpermitted_unichar": NoncomplianceType.INVALID_CHARACTER,
        "e_subject_organization_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_subject_common_name_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_subject_locality_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_rfc_subject_dn_not_printable_characters": NoncomplianceType.INVALID_CHARACTER,
        "e_subject_ou_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_subject_jurisdiction_locality_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_rfc_ext_cp_explicit_text_too_long": NoncomplianceType.ILLEGAL_FORMAT,
        "e_subject_jurisdiction_state_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_rfc_ext_cp_explicit_text_ia5": NoncomplianceType.INVALID_ENCODING,
        "e_subject_jurisdiction_country_not_printable": NoncomplianceType.INVALID_ENCODING,
        "e_subject_state_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_rfc_subject_printable_string_badalpha": NoncomplianceType.INVALID_CHARACTER,
        "w_community_subject_dn_trailing_whitespace": NoncomplianceType.INVALID_CHARACTER,
        "e_subject_postal_code_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "e_subject_street_not_printable_or_utf8": NoncomplianceType.INVALID_ENCODING,
        "w_cab_subject_contain_extra_common_name": NoncomplianceType.DISCOURAGED_FIELD,
        "e_subject_dn_serial_number_not_printable": NoncomplianceType.INVALID_ENCODING,
        "w_community_subject_dn_leading_whitespace": NoncomplianceType.INVALID_CHARACTER,
        "e_rfc_subject_country_not_printable": NoncomplianceType.INVALID_ENCODING,
        "e_rfc_dns_idn_malformed_unicode": NoncomplianceType.INVALID_CHARACTER,
        "e_cab_dns_bad_character_in_label": NoncomplianceType.INVALID_CHARACTER,
        "e_ext_san_dns_contain_unpermitted_unichar": NoncomplianceType.INVALID_CHARACTER,
    }

    def test_all_present_with_correct_type(self):
        for name, nc_type in self.TABLE11.items():
            assert name in REGISTRY, name
            assert REGISTRY.get(name).metadata.nc_type is nc_type, name

    def test_new_flags_match_table11(self):
        new_names = {
            "e_rfc_dns_idn_a2u_unpermitted_unichar",
            "e_subject_organization_not_printable_or_utf8",
            "e_subject_common_name_not_printable_or_utf8",
            "e_subject_locality_not_printable_or_utf8",
            "e_subject_ou_not_printable_or_utf8",
            "e_subject_jurisdiction_locality_not_printable_or_utf8",
            "e_subject_jurisdiction_state_not_printable_or_utf8",
            "e_subject_jurisdiction_country_not_printable",
            "e_subject_state_not_printable_or_utf8",
            "e_subject_postal_code_not_printable_or_utf8",
            "e_subject_street_not_printable_or_utf8",
            "e_ext_san_dns_contain_unpermitted_unichar",
        }
        for name in self.TABLE11:
            assert REGISTRY.get(name).metadata.new is (name in new_names), name


class TestRunner:
    def test_clean_cert_compliant(self):
        report = run_lints(clean_cert())
        assert not report.noncompliant, report.fired_lints()

    def test_effective_date_suppression(self):
        # A pre-BR cert with a CN not in SAN is suppressed, not flagged.
        cert = (
            CertificateBuilder()
            .subject_cn("old.example.com")
            .not_before(dt.datetime(2009, 1, 1))
            .validity_days(365)
            .sign(KEY)
        )
        report = run_lints(cert)
        fired = report.fired_lints()
        assert "w_cab_subject_common_name_not_in_san" not in fired
        suppressed = [r.lint.name for r in report.suppressed_by_effective_date]
        assert "w_cab_subject_common_name_not_in_san" in suppressed
        assert report.noncompliant_ignoring_dates

    def test_effective_dates_can_be_ignored(self):
        cert = (
            CertificateBuilder()
            .subject_cn("old.example.com")
            .not_before(dt.datetime(2009, 1, 1))
            .sign(KEY)
        )
        report = run_lints(cert, respect_effective_dates=False)
        assert "w_cab_subject_common_name_not_in_san" in report.fired_lints()

    def test_explicit_issue_date_overrides_not_before(self):
        cert = (
            CertificateBuilder()
            .subject_cn("x.example.com")
            .not_before(dt.datetime(2009, 1, 1))
            .sign(KEY)
        )
        report = run_lints(cert, issued_at=dt.datetime(2020, 1, 1))
        assert "w_cab_subject_common_name_not_in_san" in report.fired_lints()

    def test_na_results_dropped(self):
        report = run_lints(clean_cert())
        names = {r.lint.name for r in report.results}
        # No CRLDP on the clean cert, so its lints must not appear.
        assert "e_crldp_uri_contains_control_characters" not in names


class TestEffectiveDateTimezones:
    """Mixed naive/aware ``issued_at`` values must not raise; aware
    values are projected onto UTC-naive at the boundary."""

    def _nosan_cert(self, when):
        return (
            CertificateBuilder()
            .subject_cn("tz.example.com")
            .not_before(when)
            .validity_days(365)
            .sign(KEY)
        )

    def test_aware_issued_at_does_not_raise(self):
        cert = self._nosan_cert(dt.datetime(2020, 1, 1))
        aware = dt.datetime(2020, 1, 1, tzinfo=dt.timezone.utc)
        report = run_lints(cert, issued_at=aware)
        assert "w_cab_subject_common_name_not_in_san" in report.fired_lints()

    def test_aware_and_naive_agree(self):
        cert = self._nosan_cert(dt.datetime(2009, 6, 1))
        naive = dt.datetime(2009, 6, 1)
        aware = dt.datetime(2009, 6, 1, tzinfo=dt.timezone.utc)
        naive_report = run_lints(cert, issued_at=naive)
        aware_report = run_lints(cert, issued_at=aware)
        assert [(r.lint.name, r.status) for r in naive_report.results] == [
            (r.lint.name, r.status) for r in aware_report.results
        ]

    def test_aware_suppression_before_effective_date(self):
        cert = self._nosan_cert(dt.datetime(2009, 1, 1))
        aware = dt.datetime(2009, 1, 1, tzinfo=dt.timezone.utc)
        report = run_lints(cert, issued_at=aware)
        suppressed = [r.lint.name for r in report.suppressed_by_effective_date]
        assert "w_cab_subject_common_name_not_in_san" in suppressed

    def test_offset_projection_crosses_effective_date(self):
        # 2012-07-01 03:00 at +07:00 is 2012-06-30 20:00 UTC — still
        # *before* the CABF BR effective date once projected.
        cert = self._nosan_cert(dt.datetime(2012, 6, 1))
        east = dt.timezone(dt.timedelta(hours=7))
        aware = dt.datetime(2012, 7, 1, 3, 0, tzinfo=east)
        report = run_lints(cert, issued_at=aware)
        suppressed = [r.lint.name for r in report.suppressed_by_effective_date]
        assert "w_cab_subject_common_name_not_in_san" in suppressed

    def test_to_utc_naive_helper(self):
        from repro.lint.framework import to_utc_naive

        naive = dt.datetime(2024, 5, 1, 12, 0)
        assert to_utc_naive(naive) is naive
        east = dt.timezone(dt.timedelta(hours=2))
        aware = dt.datetime(2024, 5, 1, 12, 0, tzinfo=east)
        assert to_utc_naive(aware) == dt.datetime(2024, 5, 1, 10, 0)
        assert to_utc_naive(aware).tzinfo is None
