"""Reachability: every one of the 95 lints fires on a crafted cert.

A lint that can never fire is dead weight; this table-driven test
builds, for each registered lint, a certificate that violates exactly
that rule and asserts the lint reports it.
"""

import datetime as dt

import pytest

from repro.asn1 import (
    BMP_STRING,
    IA5_STRING,
    PRINTABLE_STRING,
    TELETEX_STRING,
    UNIVERSAL_STRING,
    UTF8_STRING,
)
import importlib

# The package exports an ``oid()`` constructor that shadows the module
# attribute, so resolve the submodule explicitly.
O = importlib.import_module("repro.asn1.oid")
from repro.lint import REGISTRY
from repro.x509 import (
    AccessDescription,
    CertificateBuilder,
    GeneralName,
    Name,
    PolicyInformation,
    PolicyQualifier,
    UserNotice,
    authority_info_access,
    certificate_policies,
    crl_distribution_points,
    generate_keypair,
    subject_alt_name,
    subject_info_access,
)

KEY = generate_keypair(seed=151)
WHEN = dt.datetime(2024, 8, 1)


def base(cn="ok.example.com", san=True):
    builder = CertificateBuilder().subject_cn(cn).not_before(WHEN)
    if san:
        builder.add_extension(subject_alt_name(GeneralName.dns(cn)))
    return builder


def with_attr(oid, value, spec=UTF8_STRING, raw=None):
    return base().subject_attr(oid, value, spec, raw=raw)


def with_issuer_attr(oid, value, spec):
    issuer = Name()
    from repro.x509 import AttributeTypeAndValue, RelativeDistinguishedName

    issuer.rdns.append(
        RelativeDistinguishedName([AttributeTypeAndValue(oid, value, spec)])
    )
    return base().issuer_name(issuer)


def with_policy(spec=UTF8_STRING, text="Notice", cps=None):
    qualifiers = []
    if cps is not None:
        qualifiers.append(PolicyQualifier(O.OID_QT_CPS, cps_uri=cps))
    else:
        qualifiers.append(
            PolicyQualifier(O.OID_QT_UNOTICE, user_notice=UserNotice(text, spec))
        )
    return base().add_extension(
        certificate_policies(PolicyInformation(O.OID_CP_DOMAIN_VALIDATED, qualifiers))
    )


def with_san(*names):
    return (
        CertificateBuilder()
        .subject_cn("ok.example.com")
        .not_before(WHEN)
        .add_extension(subject_alt_name(*names))
    )


def with_ian(*names):
    from repro.x509 import issuer_alt_name

    return base().add_extension(issuer_alt_name(*names))


#: lint name -> builder producing a violating certificate.
VIOLATORS = {
    # ----- T1 Invalid Character ------------------------------------------------
    "e_rfc_subject_dn_not_printable_characters": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Evil\x00Org"
    ),
    "e_rfc_issuer_dn_not_printable_characters": lambda: with_issuer_attr(
        O.OID_ORGANIZATION_NAME, "Bad\x01CA", UTF8_STRING
    ),
    "w_community_subject_dn_leading_whitespace": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, " Org"
    ),
    "w_community_subject_dn_trailing_whitespace": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Org "
    ),
    "w_community_dn_del_character": lambda: with_attr(O.OID_ORGANIZATION_NAME, "Pre\x7fpaid"),
    "w_community_dn_replacement_character": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "St�ri AG"
    ),
    "e_subject_dn_bidi_control_characters": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "www.‮lapyap‬.com"
    ),
    "e_subject_dn_invisible_characters": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Peddy​Shield"
    ),
    "e_subject_cn_unicode_noncharacter": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "bad﷐name"
    ),
    "w_subject_dn_mixed_script_confusable": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Acmе Corp"  # Cyrillic е
    ),
    "e_rfc_subject_printable_string_badalpha": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Org@Home", PRINTABLE_STRING
    ),
    "e_cab_dns_bad_character_in_label": lambda: base(cn="bad_label.example.com"),
    "e_cab_dns_name_contains_whitespace": lambda: base(cn="a.com b.com"),
    "e_rfc_dns_idn_malformed_unicode": lambda: base(cn="xn--99999999999.com"),
    "e_rfc_dns_idn_a2u_unpermitted_unichar": lambda: base(cn="xn--www-hn0a.com"),
    "e_ext_san_dns_contain_unpermitted_unichar": lambda: base(cn="te中st.com"),
    "e_ext_san_rfc822_contain_unpermitted_unichar": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.email("usér@x.com", spec=UTF8_STRING)
    ),
    "e_ext_san_uri_contain_unpermitted_unichar": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.uri("http://é.com", spec=UTF8_STRING)
    ),
    "e_rfc_email_contains_control_characters": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.email("a\x01@x.com")
    ),
    "e_rfc_uri_contains_control_characters": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.uri("http://a\x02.com/")
    ),
    "e_crldp_uri_contains_control_characters": lambda: base().add_extension(
        crl_distribution_points("http://ssl\x01test.com")
    ),
    "e_ext_cp_explicit_text_control_characters": lambda: with_policy(
        UTF8_STRING, "bad\x00notice"
    ),
    # ----- T2 Bad Normalization ---------------------------------------------
    "w_rfc_utf8_string_not_nfc": lambda: with_attr(O.OID_ORGANIZATION_NAME, "Café"),
    "e_rfc_dns_idn_u_label_not_nfc": lambda: base(
        cn="xn--" + __import__("repro.uni.punycode", fromlist=["encode"]).encode("café") + ".com"
    ),
    # Encoding an uppercase U-label yields digits for 'Ü' that differ
    # from the canonical lowercase form, so the round trip mismatches.
    "e_rfc_dns_idn_alabel_roundtrip_mismatch": lambda: base(
        cn="xn--"
        + __import__("repro.uni.punycode", fromlist=["encode"]).encode("MÜNCHEN").lower()
        + ".de"
    ),
    "e_smtp_utf8_mailbox_not_nfc": lambda: with_san(
        GeneralName.dns("ok.example.com"),
        GeneralName.smtp_utf8_mailbox("usér@example.com"),
    ),
    # ----- T3 Illegal Format ----------------------------------------------------
    "e_subject_common_name_max_length": lambda: base(cn="a" * 70),
    "e_subject_organization_name_max_length": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "x" * 65
    ),
    "e_subject_locality_name_max_length": lambda: with_attr(O.OID_LOCALITY_NAME, "x" * 129),
    "e_subject_state_name_max_length": lambda: with_attr(O.OID_STATE_OR_PROVINCE, "x" * 129),
    "e_subject_serial_number_max_length": lambda: with_attr(
        O.OID_SERIAL_NUMBER, "1" * 65, PRINTABLE_STRING
    ),
    "e_subject_country_not_two_letter": lambda: with_attr(
        O.OID_COUNTRY_NAME, "Germany", PRINTABLE_STRING
    ),
    "e_subject_country_not_uppercase": lambda: with_attr(
        O.OID_COUNTRY_NAME, "de", PRINTABLE_STRING
    ),
    "e_dns_label_too_long": lambda: base(cn="b" * 64 + ".com"),
    "e_dns_name_too_long": lambda: base(cn=".".join(["a" * 60] * 5) + ".com"),
    "e_dns_label_empty": lambda: base(cn="a..example.com"),
    "e_dns_label_hyphen_at_edge": lambda: base(cn="-lead.example.com"),
    "e_san_dns_name_includes_port_or_path": lambda: base(cn="host.example.com:8443"),
    "e_rfc822_invalid_syntax": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.email("not-an-email")
    ),
    "e_uri_invalid_scheme": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.uri("noscheme")
    ),
    "e_subject_empty_attribute_value": lambda: with_attr(O.OID_ORGANIZATION_NAME, ""),
    "e_ext_san_empty_name": lambda: CertificateBuilder()
    .subject_cn("ok.example.com")
    .not_before(WHEN)
    .add_extension(subject_alt_name()),
    "e_rfc_ext_cp_explicit_text_too_long": lambda: with_policy(UTF8_STRING, "x" * 201),
    # ----- T3 Invalid Structure / Discouraged -------------------------------
    "w_cab_subject_common_name_not_in_san": lambda: base(cn="cn.example.com", san=False)
    .add_extension(subject_alt_name(GeneralName.dns("other.example.com"))),
    "e_subject_dn_duplicate_attribute": lambda: base().subject_cn("ok.example.com"),
    "w_cab_subject_contain_extra_common_name": lambda: base().subject_cn("ok.example.com"),
    "w_ext_san_uri_discouraged": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.uri("https://ok.example.com/")
    ),
    # ----- T3 Invalid Encoding ---------------------------------------------------
    "e_rfc_subject_country_not_printable": lambda: with_attr(O.OID_COUNTRY_NAME, "DE"),
    "e_issuer_dn_country_not_printable": lambda: with_issuer_attr(
        O.OID_COUNTRY_NAME, "DE", UTF8_STRING
    ),
    "e_subject_dn_serial_number_not_printable": lambda: with_attr(O.OID_SERIAL_NUMBER, "123"),
    "e_subject_dc_not_ia5": lambda: with_attr(O.OID_DOMAIN_COMPONENT, "example"),
    "e_subject_email_not_ia5": lambda: with_attr(
        O.OID_EMAIL_ADDRESS, "a@b.c", PRINTABLE_STRING
    ),
    "w_subject_dn_uses_teletexstring": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Org", TELETEX_STRING
    ),
    "w_subject_dn_uses_bmpstring": lambda: with_attr(O.OID_ORGANIZATION_NAME, "Org", BMP_STRING),
    "w_subject_dn_uses_universalstring": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "Org", UNIVERSAL_STRING
    ),
    "w_issuer_dn_uses_teletexstring": lambda: with_issuer_attr(
        O.OID_ORGANIZATION_NAME, "CA Org", TELETEX_STRING
    ),
    "e_subject_dn_qualifier_not_printable": lambda: with_attr(O.OID_DN_QUALIFIER, "q"),
    "e_ext_san_dns_not_ia5string": lambda: with_san(
        GeneralName.dns("中国.example.com", spec=UTF8_STRING)
    ),
    "e_ext_san_rfc822_not_ia5string": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.email("usér@x.com", spec=UTF8_STRING)
    ),
    "e_ext_san_uri_not_ia5string": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.uri("http://例.com/", spec=UTF8_STRING)
    ),
    "e_ext_ian_dns_not_ia5string": lambda: with_ian(
        GeneralName.dns("中国.example.com", spec=UTF8_STRING)
    ),
    "e_ext_ian_rfc822_not_ia5string": lambda: with_ian(
        GeneralName.email("usér@x.com", spec=UTF8_STRING)
    ),
    "e_ext_aia_location_not_ia5string": lambda: base().add_extension(
        authority_info_access(
            AccessDescription(
                O.OID_AD_CA_ISSUERS, GeneralName.uri("http://ca.例子.com/", spec=UTF8_STRING)
            )
        )
    ),
    "e_ext_sia_location_not_ia5string": lambda: base().add_extension(
        subject_info_access(
            AccessDescription(
                O.OID_AD_CA_REPOSITORY, GeneralName.uri("http://例.com/", spec=UTF8_STRING)
            )
        )
    ),
    "e_ext_crldp_uri_not_ia5string": lambda: base().add_extension(
        crl_distribution_points("http://crl.例子.com/r.crl")
    ),
    "w_rfc_ext_cp_explicit_text_not_utf8": lambda: with_policy(BMP_STRING),
    "e_rfc_ext_cp_explicit_text_ia5": lambda: with_policy(IA5_STRING),
    "e_ext_cp_cps_uri_not_ia5string": lambda: with_policy(cps="http://cps.例子.com"),
    "e_smtp_utf8_mailbox_not_utf8string": lambda: _smtp_raw_bmp(),
    "e_smtp_utf8_mailbox_ascii_only": lambda: with_san(
        GeneralName.dns("ok.example.com"),
        GeneralName.smtp_utf8_mailbox("plain@example.com"),
    ),
    "e_rfc822_name_contains_non_ascii_local_part": lambda: with_san(
        GeneralName.dns("ok.example.com"), GeneralName.email("usér@x.com", spec=UTF8_STRING)
    ),
    "e_dn_attribute_undecodable_bytes": lambda: with_attr(
        O.OID_ORGANIZATION_NAME, "", raw=b"\xc3\x28"
    ),
}

# The *_not_printable_or_utf8 family (subject + jurisdiction + issuer).
_FAMILY = {
    "e_subject_common_name_not_printable_or_utf8": (O.OID_COMMON_NAME, False),
    "e_subject_organization_not_printable_or_utf8": (O.OID_ORGANIZATION_NAME, False),
    "e_subject_ou_not_printable_or_utf8": (O.OID_ORGANIZATIONAL_UNIT, False),
    "e_subject_locality_not_printable_or_utf8": (O.OID_LOCALITY_NAME, False),
    "e_subject_state_not_printable_or_utf8": (O.OID_STATE_OR_PROVINCE, False),
    "e_subject_street_not_printable_or_utf8": (O.OID_STREET_ADDRESS, False),
    "e_subject_postal_code_not_printable_or_utf8": (O.OID_POSTAL_CODE, False),
    "e_subject_given_name_not_printable_or_utf8": (O.OID_GIVEN_NAME, False),
    "e_subject_surname_not_printable_or_utf8": (O.OID_SURNAME, False),
    "e_subject_title_not_printable_or_utf8": (O.OID_TITLE, False),
    "e_subject_pseudonym_not_printable_or_utf8": (O.OID_PSEUDONYM, False),
    "e_subject_business_category_not_printable_or_utf8": (O.OID_BUSINESS_CATEGORY, False),
    "e_subject_org_identifier_not_printable_or_utf8": (O.OID_ORGANIZATION_IDENTIFIER, False),
    "e_subject_uid_not_printable_or_utf8": (O.OID_USER_ID, False),
    "e_subject_unstructured_name_not_printable_or_utf8": (O.OID_UNSTRUCTURED_NAME, False),
    "e_subject_jurisdiction_locality_not_printable_or_utf8": (O.OID_JURISDICTION_LOCALITY, False),
    "e_subject_jurisdiction_state_not_printable_or_utf8": (O.OID_JURISDICTION_STATE, False),
    "e_subject_jurisdiction_country_not_printable": (O.OID_JURISDICTION_COUNTRY, False),
    "e_issuer_common_name_not_printable_or_utf8": (O.OID_COMMON_NAME, True),
    "e_issuer_organization_not_printable_or_utf8": (O.OID_ORGANIZATION_NAME, True),
    "e_issuer_ou_not_printable_or_utf8": (O.OID_ORGANIZATIONAL_UNIT, True),
    "e_issuer_locality_not_printable_or_utf8": (O.OID_LOCALITY_NAME, True),
    "e_issuer_state_not_printable_or_utf8": (O.OID_STATE_OR_PROVINCE, True),
}

for _name, (_oid, _issuer_side) in _FAMILY.items():
    if _issuer_side:
        VIOLATORS[_name] = (
            lambda oid=_oid: with_issuer_attr(oid, "Val", BMP_STRING)
        )
    else:
        VIOLATORS[_name] = lambda oid=_oid: with_attr(oid, "Val", BMP_STRING)


def _smtp_raw_bmp():
    """An otherName SmtpUTF8Mailbox whose inner value is a BMPString."""
    from repro.asn1 import BMP_STRING as BMP, Element, Tag, explicit
    from repro.asn1.oid import OID_ON_SMTP_UTF8_MAILBOX

    inner = explicit(
        0, Element.primitive(Tag.universal(30), BMP.encode("usér@x.com"))
    )
    gn = GeneralName(
        kind=__import__("repro.x509", fromlist=["GeneralNameKind"]).GeneralNameKind.OTHER_NAME,
        value="usér@x.com",
        raw=inner.encode(),
        other_name_oid=OID_ON_SMTP_UTF8_MAILBOX,
    )
    return with_san(GeneralName.dns("ok.example.com"), gn)


@pytest.mark.parametrize("lint_name", sorted(lint.metadata.name for lint in REGISTRY.all()))
def test_lint_reachable(lint_name):
    assert lint_name in VIOLATORS, f"no violating builder for {lint_name}"
    cert = VIOLATORS[lint_name]().sign(KEY)
    lint = REGISTRY.get(lint_name)
    result = lint.run(cert)
    assert result.is_finding, (
        f"{lint_name} did not fire (status={result.status}, details={result.details!r})"
    )


def test_violator_table_covers_registry():
    registered = {lint.metadata.name for lint in REGISTRY.all()}
    assert set(VIOLATORS) == registered
