"""Tests for the frozen constraint rules and the extraction pipeline."""

from repro.lint import (
    CONSTRAINT_RULES,
    REGISTRY,
    SPEC_LIBRARY,
    extract_constraint_rules,
    filter_sections,
    rules_for_lint,
)
from repro.lint.rfc_analyzer import (
    EXTRACTION_KEYWORDS,
    SUPPLEMENTAL_DOCUMENTS,
    sections_for_rule,
)


class TestConstraintRules:
    def test_one_rule_per_lint(self):
        assert len(CONSTRAINT_RULES) == len(REGISTRY) == 95

    def test_rule_ids_unique_and_ordered(self):
        ids = [rule.rule_id for rule in CONSTRAINT_RULES]
        assert len(set(ids)) == 95
        assert ids == sorted(ids)

    def test_fifty_new(self):
        assert sum(1 for rule in CONSTRAINT_RULES if rule.new) == 50

    def test_requirement_levels_match_severity(self):
        from repro.lint import Severity

        for rule in CONSTRAINT_RULES:
            severity = REGISTRY.get(rule.lint_name).metadata.severity
            expected = "MUST" if severity is Severity.ERROR else "SHOULD"
            assert rule.requirement_level == expected

    def test_lookup(self):
        rule = rules_for_lint("e_rfc_dns_idn_a2u_unpermitted_unichar")
        assert rule.new
        assert "IDNA" in rule.source_document

    def test_structures_use_arrow_notation(self):
        # The Appendix C prompt format: layers joined by '-->'.
        for rule in CONSTRAINT_RULES:
            assert "-->" in rule.structures

    def test_every_rule_has_source_sections(self):
        for rule in CONSTRAINT_RULES:
            assert sections_for_rule(rule), rule.lint_name


class TestExtractionPipeline:
    def test_keyword_filter_matches_most_sections(self):
        matched = filter_sections()
        assert len(matched) == len(SPEC_LIBRARY)

    def test_supplemental_brs_included_even_without_keywords(self):
        matched = filter_sections(keywords=["zzz-no-match"])
        assert {s.document for s in matched} == set(SUPPLEMENTAL_DOCUMENTS)

    def test_full_extraction_regenerates_95(self):
        assert len(extract_constraint_rules()) == 95

    def test_narrow_keywords_extract_subset(self):
        rules = extract_constraint_rules(keywords=["IDN-only-keyword-zzz"])
        assert 0 < len(rules) < 95  # Only supplemental-backed rules.

    def test_paper_keywords_present(self):
        for keyword in ("NFC", "IDN", "Unicode", "PrintableString"):
            assert keyword in EXTRACTION_KEYWORDS
