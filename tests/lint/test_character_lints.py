"""Behavioural tests for the T1 Invalid Character lints."""

import datetime as dt

import pytest

from repro.asn1 import PRINTABLE_STRING, UTF8_STRING
from repro.asn1.oid import OID_ORGANIZATION_NAME
from repro.lint import REGISTRY, LintStatus, run_lints
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    crl_distribution_points,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=7)
WHEN = dt.datetime(2024, 3, 1)


def build(cn="ok.example.com", san_name=None, **extra):
    builder = (
        CertificateBuilder().subject_cn(cn).not_before(WHEN).validity_days(90)
    )
    builder.add_extension(
        subject_alt_name(GeneralName.dns(san_name if san_name is not None else cn))
    )
    return builder


def fired(cert):
    return set(run_lints(cert).fired_lints())


class TestControlCharacterLints:
    def test_nul_in_cn(self):
        cert = build(cn="evil\x00entity.com", san_name="evil\x00entity.com").sign(KEY)
        assert "e_rfc_subject_dn_not_printable_characters" in fired(cert)

    def test_esc_in_o(self):
        cert = (
            build()
            .subject_attr(OID_ORGANIZATION_NAME, "Acme\x1bCorp")
            .sign(KEY)
        )
        assert "e_rfc_subject_dn_not_printable_characters" in fired(cert)

    def test_issuer_side(self):
        from repro.x509 import Name

        issuer = Name.build([(OID_ORGANIZATION_NAME, "Bad\x02CA")])
        cert = build().issuer_name(issuer).sign(KEY)
        assert "e_rfc_issuer_dn_not_printable_characters" in fired(cert)

    def test_del_character(self):
        cert = (
            build().subject_attr(OID_ORGANIZATION_NAME, "Prepaid\x7fServices").sign(KEY)
        )
        found = fired(cert)
        assert "w_community_dn_del_character" in found


class TestWhitespaceLints:
    def test_leading(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, " Acme").sign(KEY)
        assert "w_community_subject_dn_leading_whitespace" in fired(cert)

    def test_trailing(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "Acme ").sign(KEY)
        assert "w_community_subject_dn_trailing_whitespace" in fired(cert)

    def test_clean_passes(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "Acme Corp").sign(KEY)
        found = fired(cert)
        assert "w_community_subject_dn_leading_whitespace" not in found
        assert "w_community_subject_dn_trailing_whitespace" not in found


class TestUnicodeCharacterLints:
    def test_bidi_control(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "www.‮lapyap‬.com").sign(KEY)
        assert "e_subject_dn_bidi_control_characters" in fired(cert)

    def test_invisible(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "Peddy​Shield").sign(KEY)
        assert "e_subject_dn_invisible_characters" in fired(cert)

    def test_noncharacter(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "bad﷐name").sign(KEY)
        assert "e_subject_cn_unicode_noncharacter" in fired(cert)

    def test_replacement_character(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "St�ri AG").sign(KEY)
        assert "w_community_dn_replacement_character" in fired(cert)

    def test_mixed_script(self):
        # Latin 'Acme' with Cyrillic 'е'.
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "Acmе Corp").sign(KEY)
        assert "w_subject_dn_mixed_script_confusable" in fired(cert)

    def test_normal_cjk_not_flagged_as_mixed(self):
        cert = build().subject_attr(OID_ORGANIZATION_NAME, "株式会社 中国銀行").sign(KEY)
        assert "w_subject_dn_mixed_script_confusable" not in fired(cert)


class TestPrintableStringBadalpha:
    def test_at_sign_in_printable(self):
        cert = (
            build()
            .subject_attr(OID_ORGANIZATION_NAME, "Acme@Corp", PRINTABLE_STRING)
            .sign(KEY)
        )
        assert "e_rfc_subject_printable_string_badalpha" in fired(cert)

    def test_compliant_printable_passes(self):
        cert = (
            build()
            .subject_attr(OID_ORGANIZATION_NAME, "Acme Corp (EU)", PRINTABLE_STRING)
            .sign(KEY)
        )
        assert "e_rfc_subject_printable_string_badalpha" not in fired(cert)


class TestDNSNameLints:
    def test_bad_character_in_label(self):
        cert = build(san_name="bad_label.example.com").sign(KEY)
        assert "e_cab_dns_bad_character_in_label" in fired(cert)

    def test_whitespace_in_name(self):
        cert = build(san_name="a.com DNS:b.com").sign(KEY)
        assert "e_cab_dns_name_contains_whitespace" in fired(cert)

    def test_wildcard_ok(self):
        cert = build(cn="*.example.com", san_name="*.example.com").sign(KEY)
        assert "e_cab_dns_bad_character_in_label" not in fired(cert)

    def test_malformed_idn(self):
        cert = build(cn="xn--999999999.com", san_name="xn--999999999.com").sign(KEY)
        assert "e_rfc_dns_idn_malformed_unicode" in fired(cert)

    def test_idn_unpermitted_unichar(self):
        # xn--www-hn0a decodes to LRM + "www" (paper P1.3 example).
        cert = build(cn="xn--www-hn0a.com", san_name="xn--www-hn0a.com").sign(KEY)
        found = fired(cert)
        assert "e_rfc_dns_idn_a2u_unpermitted_unichar" in found
        assert "e_rfc_dns_idn_malformed_unicode" not in found

    def test_valid_idn_passes(self):
        cert = build(cn="xn--mnchen-3ya.de", san_name="xn--mnchen-3ya.de").sign(KEY)
        found = fired(cert)
        assert "e_rfc_dns_idn_malformed_unicode" not in found
        assert "e_rfc_dns_idn_a2u_unpermitted_unichar" not in found


class TestSANCharacterLints:
    def test_unicode_dns_in_san(self):
        cert = build(cn="ok.example.com", san_name="中国.example.com").sign(KEY)
        assert "e_ext_san_dns_contain_unpermitted_unichar" in fired(cert)

    def test_email_control_chars(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.email("user\x01@example.com"),
                )
            )
            .sign(KEY)
        )
        assert "e_rfc_email_contains_control_characters" in fired(cert)

    def test_uri_control_chars(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.uri("http://a\x02b.com/x"),
                )
            )
            .sign(KEY)
        )
        assert "e_rfc_uri_contains_control_characters" in fired(cert)


class TestCRLDPAndPolicyLints:
    def test_crldp_control_characters(self):
        # The paper's revocation-subversion example.
        cert = (
            build()
            .add_extension(crl_distribution_points("http://ssl\x01test.com"))
            .sign(KEY)
        )
        assert "e_crldp_uri_contains_control_characters" in fired(cert)

    def test_clean_crldp_passes(self):
        cert = (
            build()
            .add_extension(crl_distribution_points("http://crl.example.com/r.crl"))
            .sign(KEY)
        )
        assert "e_crldp_uri_contains_control_characters" not in fired(cert)

    def test_explicit_text_controls(self):
        from repro.asn1.oid import OID_CP_DOMAIN_VALIDATED, OID_QT_UNOTICE
        from repro.x509 import PolicyInformation, PolicyQualifier, UserNotice, certificate_policies

        policy = PolicyInformation(
            OID_CP_DOMAIN_VALIDATED,
            qualifiers=[
                PolicyQualifier(
                    OID_QT_UNOTICE, user_notice=UserNotice("bad\x00notice", UTF8_STRING)
                )
            ],
        )
        cert = build().add_extension(certificate_policies(policy)).sign(KEY)
        assert "e_ext_cp_explicit_text_control_characters" in fired(cert)
