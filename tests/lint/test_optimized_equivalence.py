"""Equivalence proof for the memoized/indexed lint fast path.

The optimized runner (per-run LintContext + RegistryIndex family
skipping + effective-date bisect + derived-view caches) must be
*invisible*: every per-certificate report and every corpus summary must
be byte-identical to the legacy per-lint loop run with caching disabled.
These tests pin that invariant over a seeded corpus at ``jobs=1`` and
``jobs=4``, plus cache-correctness tests proving mutated or rebuilt
certificates never serve stale memoized views.
"""

import datetime as dt

import pytest

from repro.asn1 import PRINTABLE_STRING
from repro.asn1.oid import OID_COMMON_NAME, OID_EXT_SAN, OID_ORGANIZATION_NAME
from repro.ct import CorpusGenerator
from repro.lint import REGISTRY, lint_corpus_parallel, run_lints, summarize, summary_to_json
from repro.x509 import (
    AttributeTypeAndValue,
    CertificateBuilder,
    GeneralName,
    RelativeDistinguishedName,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=99)
WHEN = dt.datetime(2024, 4, 1)


@pytest.fixture(scope="module")
def corpus():
    # ~170 records spanning the generator's issuer/IDN/noncompliance mix.
    return CorpusGenerator(seed=11, scale=1 / 200000).generate()


def _report_shape(report):
    return [(r.lint.name, r.status, r.details) for r in report.results]


def _build(cn="test.example.com", san=None):
    builder = CertificateBuilder().subject_cn(cn).not_before(WHEN)
    builder.add_extension(subject_alt_name(GeneralName.dns(san or cn)))
    return builder.sign(KEY)


class TestReportEquivalence:
    def test_every_report_identical_to_uncached_path(self, corpus):
        for record in corpus.records:
            reference = run_lints(
                record.certificate, issued_at=record.issued_at, optimized=False
            )
            optimized = run_lints(record.certificate, issued_at=record.issued_at)
            assert _report_shape(optimized) == _report_shape(reference)

    def test_summary_identical_across_paths_and_jobs(self, corpus):
        reference = summarize(
            run_lints(r.certificate, issued_at=r.issued_at, optimized=False)
            for r in corpus.records
        )
        baseline = summary_to_json(reference)
        inline = lint_corpus_parallel(corpus, jobs=1)
        fanout = lint_corpus_parallel(corpus, jobs=4)
        unoptimized = lint_corpus_parallel(corpus, jobs=1, optimized=False)
        assert summary_to_json(inline.summary) == baseline
        assert summary_to_json(fanout.summary) == baseline
        assert summary_to_json(unoptimized.summary) == baseline

    def test_subset_run_matches_uncached(self, corpus):
        subset = REGISTRY.snapshot()[:7]
        record = corpus.records[0]
        reference = run_lints(
            record.certificate,
            issued_at=record.issued_at,
            lints=subset,
            optimized=False,
        )
        optimized = run_lints(
            record.certificate, issued_at=record.issued_at, lints=subset
        )
        assert _report_shape(optimized) == _report_shape(reference)

    def test_ignoring_effective_dates_matches(self, corpus):
        for record in corpus.records[:25]:
            reference = run_lints(
                record.certificate,
                issued_at=record.issued_at,
                respect_effective_dates=False,
                optimized=False,
            )
            optimized = run_lints(
                record.certificate,
                issued_at=record.issued_at,
                respect_effective_dates=False,
            )
            assert _report_shape(optimized) == _report_shape(reference)

    def test_no_context_left_behind(self):
        cert = _build()
        run_lints(cert)
        assert not hasattr(cert, "_lint_ctx")


class TestFamilySkipEquivalence:
    """Family skipping must be invisible (the staticcheck hazard).

    A mis-declared ``families`` frozenset would make ``RegistryIndex``
    skip a lint whose ``applies()`` would have returned True, silently
    turning findings into NAs.  ``repro.staticcheck``'s family-soundness
    checker proves the declarations statically; this test pins the same
    contract dynamically: a jobs-1 run with skipping enabled must yield
    a summary identical to a full no-skip run over the seeded corpus.
    """

    def test_jobs1_summary_identical_to_no_skip_run(self, corpus):
        from repro.lint.framework import REGISTRY, RegistryIndex

        lints = REGISTRY.snapshot()
        skipping = RegistryIndex(lints)
        no_skip = RegistryIndex(lints)
        # Defeat the isdisjoint fast path: every lint's applies() runs.
        no_skip.entries = tuple((lint, None) for lint in lints)
        with_skip = summarize(
            run_lints(r.certificate, issued_at=r.issued_at, index=skipping)
            for r in corpus.records
        )
        without_skip = summarize(
            run_lints(r.certificate, issued_at=r.issued_at, index=no_skip)
            for r in corpus.records
        )
        assert summary_to_json(with_skip) == summary_to_json(without_skip)

    def test_per_report_skip_equivalence(self, corpus):
        from repro.lint.framework import REGISTRY, RegistryIndex

        lints = REGISTRY.snapshot()
        no_skip = RegistryIndex(lints)
        no_skip.entries = tuple((lint, None) for lint in lints)
        for record in corpus.records[:40]:
            skipped = run_lints(record.certificate, issued_at=record.issued_at)
            full = run_lints(
                record.certificate, issued_at=record.issued_at, index=no_skip
            )
            assert _report_shape(skipped) == _report_shape(full)


class TestViewCacheCorrectness:
    def test_san_view_memoized_per_payload(self):
        cert = _build(san="a.example.com")
        assert cert.san is cert.san  # identical object while payload unchanged

    def test_value_der_swap_invalidates_san(self):
        donor = _build(san="b.example.com")
        cert = _build(san="a.example.com")
        assert cert.san.dns_names() == ["a.example.com"]
        cert.get_extension(OID_EXT_SAN).value_der = donor.get_extension(
            OID_EXT_SAN
        ).value_der
        assert cert.san.dns_names() == ["b.example.com"]

    def test_extension_replacement_invalidates_san(self):
        cert = _build(san="a.example.com")
        assert cert.san.dns_names() == ["a.example.com"]
        cert.extensions = [e for e in cert.extensions if e.oid != OID_EXT_SAN]
        assert cert.san is None
        cert.extensions.append(
            subject_alt_name(GeneralName.dns("c.example.com"))
        )
        assert cert.san.dns_names() == ["c.example.com"]

    def test_malformed_san_yields_parse_error(self):
        cert = _build(san="a.example.com")
        assert cert.san_parse_error is None
        # SEQUENCE whose inner element promises more octets than exist.
        cert.get_extension(OID_EXT_SAN).value_der = b"\x30\x03\x82\x05a"
        assert cert.san is None
        assert cert.san_parse_error is not None

    def test_rebuilt_certificate_never_shares_cache(self):
        first = _build(san="a.example.com")
        second = _build(san="b.example.com")
        assert first.san.dns_names() == ["a.example.com"]
        assert second.san.dns_names() == ["b.example.com"]


class TestNameCacheCorrectness:
    def test_attr_list_mutation_invalidates(self):
        cert = _build()
        assert [a.value for a in cert.subject.attributes()] == ["test.example.com"]
        cert.subject.rdns.append(
            RelativeDistinguishedName(
                [
                    AttributeTypeAndValue(
                        oid=OID_ORGANIZATION_NAME, value="Org", spec=PRINTABLE_STRING
                    )
                ]
            )
        )
        assert [a.value for a in cert.subject.attributes()] == [
            "test.example.com",
            "Org",
        ]
        assert cert.subject.get(OID_ORGANIZATION_NAME) == ["Org"]

    def test_oid_reassignment_invalidates(self):
        cert = _build()
        assert cert.subject.get(OID_COMMON_NAME) == ["test.example.com"]
        attr = cert.subject.rdns[0].attributes[0]
        attr.oid = OID_ORGANIZATION_NAME
        assert cert.subject.get(OID_COMMON_NAME) == []
        assert cert.subject.get(OID_ORGANIZATION_NAME) == ["test.example.com"]

    def test_value_reassignment_reads_live(self):
        cert = _build()
        cert.subject.attributes()  # warm the index
        cert.subject.rdns[0].attributes[0].value = "renamed.example.com"
        assert cert.subject.get(OID_COMMON_NAME) == ["renamed.example.com"]

    def test_char_set_tracks_value_object(self):
        attr = AttributeTypeAndValue(oid=OID_COMMON_NAME, value="abc")
        assert attr.char_set == frozenset("abc")
        assert attr.char_set is attr.char_set  # memoized per value object
        attr.value = "xyz"
        assert attr.char_set == frozenset("xyz")

    def test_char_set_interned_across_objects(self):
        # Equal value strings on distinct attributes (issuer DNs repeat
        # corpus-wide) share one interned frozenset, and GeneralNames
        # draw from the same pool.
        value = "Interned Probe Org é"
        first = AttributeTypeAndValue(oid=OID_ORGANIZATION_NAME, value=value)
        second = AttributeTypeAndValue(oid=OID_ORGANIZATION_NAME, value=value)
        assert first.char_set is second.char_set
        assert GeneralName.dns(value).char_set is first.char_set

    def test_char_set_interning_honors_cache_switch(self):
        from repro.x509.cache import caching_disabled

        attr = AttributeTypeAndValue(oid=OID_COMMON_NAME, value="switch-probe")
        with caching_disabled():
            uncached = attr.char_set
            assert uncached == frozenset("switch-probe")
            assert attr.char_set is not uncached  # recomputed, not stored
