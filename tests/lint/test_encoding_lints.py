"""Behavioural tests for the T3 Invalid Encoding lints."""

import datetime as dt

from repro.asn1 import (
    BMP_STRING,
    IA5_STRING,
    PRINTABLE_STRING,
    TELETEX_STRING,
    UNIVERSAL_STRING,
    UTF8_STRING,
)
from repro.asn1.oid import (
    OID_COUNTRY_NAME,
    OID_DOMAIN_COMPONENT,
    OID_EMAIL_ADDRESS,
    OID_JURISDICTION_COUNTRY,
    OID_LOCALITY_NAME,
    OID_ORGANIZATION_NAME,
    OID_SERIAL_NUMBER,
    OID_CP_DOMAIN_VALIDATED,
    OID_QT_CPS,
    OID_QT_UNOTICE,
)
from repro.lint import run_lints
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    PolicyInformation,
    PolicyQualifier,
    UserNotice,
    certificate_policies,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=11)
WHEN = dt.datetime(2024, 6, 1)


def builder(cn="ok.example.com"):
    return (
        CertificateBuilder()
        .subject_cn(cn)
        .not_before(WHEN)
        .add_extension(subject_alt_name(GeneralName.dns(cn)))
    )


def fired(cert):
    return set(run_lints(cert).fired_lints())


class TestDirectoryStringFamily:
    def test_bmp_organization(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "Org", BMP_STRING).sign(KEY)
        assert "e_subject_organization_not_printable_or_utf8" in fired(cert)

    def test_teletex_cn(self):
        cert = (
            CertificateBuilder()
            .subject_cn("Störi AG", spec=TELETEX_STRING)
            .not_before(WHEN)
            .sign(KEY)
        )
        found = fired(cert)
        assert "e_subject_common_name_not_printable_or_utf8" in found
        assert "w_subject_dn_uses_teletexstring" in found

    def test_universal_locality(self):
        cert = builder().subject_attr(OID_LOCALITY_NAME, "City", UNIVERSAL_STRING).sign(KEY)
        found = fired(cert)
        assert "e_subject_locality_not_printable_or_utf8" in found
        assert "w_subject_dn_uses_universalstring" in found

    def test_utf8_passes(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "Örg", UTF8_STRING).sign(KEY)
        assert "e_subject_organization_not_printable_or_utf8" not in fired(cert)

    def test_printable_passes(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "Org", PRINTABLE_STRING).sign(KEY)
        assert "e_subject_organization_not_printable_or_utf8" not in fired(cert)

    def test_jurisdiction_country_utf8_flagged(self):
        # PrintableString-only attribute encoded as UTF8String.
        cert = builder().subject_attr(OID_JURISDICTION_COUNTRY, "DE", UTF8_STRING).sign(KEY)
        assert "e_subject_jurisdiction_country_not_printable" in fired(cert)


class TestPrintableOnlyAttrs:
    def test_country_utf8(self):
        cert = builder().subject_attr(OID_COUNTRY_NAME, "DE", UTF8_STRING).sign(KEY)
        assert "e_rfc_subject_country_not_printable" in fired(cert)

    def test_serial_utf8(self):
        cert = builder().subject_attr(OID_SERIAL_NUMBER, "12345", UTF8_STRING).sign(KEY)
        assert "e_subject_dn_serial_number_not_printable" in fired(cert)

    def test_dc_must_be_ia5(self):
        cert = builder().subject_attr(OID_DOMAIN_COMPONENT, "example", UTF8_STRING).sign(KEY)
        assert "e_subject_dc_not_ia5" in fired(cert)

    def test_email_must_be_ia5(self):
        cert = builder().subject_attr(OID_EMAIL_ADDRESS, "a@b.c", PRINTABLE_STRING).sign(KEY)
        assert "e_subject_email_not_ia5" in fired(cert)

    def test_compliant_country_passes(self):
        cert = builder().subject_attr(OID_COUNTRY_NAME, "DE", PRINTABLE_STRING).sign(KEY)
        assert "e_rfc_subject_country_not_printable" not in fired(cert)


class TestGeneralNameEncodings:
    def test_san_dns_utf8_bytes(self):
        cert = (
            CertificateBuilder()
            .subject_cn("中国.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(GeneralName.dns("中国.example.com", spec=UTF8_STRING))
            )
            .sign(KEY)
        )
        assert "e_ext_san_dns_not_ia5string" in fired(cert)

    def test_san_email_non_ascii(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.email("usér@example.com", spec=UTF8_STRING),
                )
            )
            .sign(KEY)
        )
        assert "e_ext_san_rfc822_not_ia5string" in fired(cert)

    def test_crldp_non_ascii(self):
        from repro.x509 import crl_distribution_points

        cert = (
            builder()
            .add_extension(crl_distribution_points("http://crl.例子.com/r.crl"))
            .sign(KEY)
        )
        assert "e_ext_crldp_uri_not_ia5string" in fired(cert)

    def test_ascii_san_passes(self):
        cert = builder().sign(KEY)
        assert "e_ext_san_dns_not_ia5string" not in fired(cert)


class TestCertificatePolicies:
    def _policy_cert(self, spec):
        policy = PolicyInformation(
            OID_CP_DOMAIN_VALIDATED,
            qualifiers=[
                PolicyQualifier(OID_QT_UNOTICE, user_notice=UserNotice("Notice", spec))
            ],
        )
        return builder().add_extension(certificate_policies(policy)).sign(KEY)

    def test_bmp_explicit_text_warns(self):
        cert = self._policy_cert(BMP_STRING)
        report = run_lints(cert)
        assert "w_rfc_ext_cp_explicit_text_not_utf8" in report.fired_lints()
        assert report.has_warning_level()

    def test_ia5_explicit_text_errors(self):
        cert = self._policy_cert(IA5_STRING)
        found = fired(cert)
        assert "e_rfc_ext_cp_explicit_text_ia5" in found
        # IA5 is carved out of the SHOULD-level lint.
        assert "w_rfc_ext_cp_explicit_text_not_utf8" not in found

    def test_utf8_explicit_text_passes(self):
        cert = self._policy_cert(UTF8_STRING)
        found = fired(cert)
        assert "w_rfc_ext_cp_explicit_text_not_utf8" not in found
        assert "e_rfc_ext_cp_explicit_text_ia5" not in found

    def test_cps_uri_non_ascii(self):
        policy = PolicyInformation(
            OID_CP_DOMAIN_VALIDATED,
            qualifiers=[PolicyQualifier(OID_QT_CPS, cps_uri="http://cps.例子.com")],
        )
        cert = builder().add_extension(certificate_policies(policy)).sign(KEY)
        assert "e_ext_cp_cps_uri_not_ia5string" in fired(cert)


class TestInternationalizedEmail:
    @staticmethod
    def _mailbox_cert(mailbox):
        return (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.smtp_utf8_mailbox(mailbox),
                )
            )
            .sign(KEY)
        )

    def test_smtp_utf8_ascii_only_flagged(self):
        cert = self._mailbox_cert("plain@example.com")
        assert "e_smtp_utf8_mailbox_ascii_only" in fired(cert)

    def test_smtp_utf8_unicode_local_ok(self):
        cert = self._mailbox_cert("用户@example.com")
        found = fired(cert)
        assert "e_smtp_utf8_mailbox_ascii_only" not in found
        assert "e_smtp_utf8_mailbox_not_utf8string" not in found

    def test_rfc822_non_ascii_local_part(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.email("usér@example.com", spec=UTF8_STRING),
                )
            )
            .sign(KEY)
        )
        assert "e_rfc822_name_contains_non_ascii_local_part" in fired(cert)


class TestUndecodableBytes:
    def test_invalid_utf8_in_dn(self):
        cert = (
            builder()
            .subject_attr(OID_ORGANIZATION_NAME, "", UTF8_STRING, raw=b"\xc3\x28")
            .sign(KEY)
        )
        assert "e_dn_attribute_undecodable_bytes" in fired(cert)

    def test_valid_bytes_pass(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "fine").sign(KEY)
        assert "e_dn_attribute_undecodable_bytes" not in fired(cert)
