"""Tests for the lint runner aggregation (CorpusSummary, reports)."""

import datetime as dt

from repro.lint import (
    NoncomplianceType,
    REGISTRY,
    run_lints,
    summarize,
)
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=141)
WHEN = dt.datetime(2024, 4, 1)


def clean():
    return (
        CertificateBuilder()
        .subject_cn("clean.example.com")
        .not_before(WHEN)
        .add_extension(subject_alt_name(GeneralName.dns("clean.example.com")))
        .sign(KEY)
    )


def dirty():
    return (
        CertificateBuilder()
        .subject_cn("bad\x00.example.com")
        .not_before(WHEN)
        .add_extension(subject_alt_name(GeneralName.dns("bad\x00.example.com")))
        .sign(KEY)
    )


class TestReports:
    def test_fired_lints_unique_per_report(self):
        report = run_lints(dirty())
        fired = report.fired_lints()
        assert len(fired) == len(set(fired))

    def test_types_classification(self):
        report = run_lints(dirty())
        assert NoncomplianceType.INVALID_CHARACTER in report.types()

    def test_error_and_warning_accessors(self):
        report = run_lints(dirty())
        assert report.has_error_level()
        assert all(r.status.value == "error" for r in report.errors)

    def test_subset_run(self):
        lint = REGISTRY.get("e_rfc_subject_dn_not_printable_characters")
        report = run_lints(dirty(), lints=[lint])
        assert report.fired_lints() == [lint.metadata.name]


class TestSummarize:
    def test_counts(self):
        reports = [run_lints(clean()), run_lints(dirty()), run_lints(dirty())]
        summary = summarize(reports)
        assert summary.total == 3
        assert summary.noncompliant == 2
        assert summary.noncompliant_ignoring_dates == 2

    def test_per_lint_counts_certs_not_findings(self):
        reports = [run_lints(dirty()), run_lints(dirty())]
        summary = summarize(reports)
        assert summary.per_lint["e_rfc_subject_dn_not_printable_characters"] == 2

    def test_per_type(self):
        summary = summarize([run_lints(dirty())])
        assert summary.per_type[NoncomplianceType.INVALID_CHARACTER] == 1

    def test_top_lints_ordering(self):
        summary = summarize([run_lints(dirty())] * 3 + [run_lints(clean())])
        ranked = summary.top_lints()
        counts = [count for _name, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_error_warn_levels(self):
        summary = summarize([run_lints(dirty())])
        assert summary.error_level.get(NoncomplianceType.INVALID_CHARACTER) == 1
