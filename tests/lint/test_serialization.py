"""Tests for JSON serialization of lint reports."""

import datetime as dt
import json

from repro.lint import run_lints, summarize
from repro.lint.serialization import (
    report_to_dict,
    report_to_json,
    summary_to_dict,
)
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=161)


def dirty_cert():
    return (
        CertificateBuilder()
        .subject_cn("bad\x00.example.com")
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns("bad\x00.example.com")))
        .sign(KEY)
    )


class TestReportSerialization:
    def test_round_trips_through_json(self):
        cert = dirty_cert()
        report = run_lints(cert)
        payload = json.loads(report_to_json(report, cert))
        assert payload["noncompliant"] is True
        assert payload["certificate"]["serial"] == 1
        names = [f["lint"] for f in payload["findings"]]
        assert "e_rfc_subject_dn_not_printable_characters" in names

    def test_finding_fields(self):
        report = run_lints(dirty_cert())
        finding = report_to_dict(report)["findings"][0]
        for key in ("lint", "status", "severity", "type", "new", "source",
                    "citation", "effective_date"):
            assert key in finding

    def test_unicode_survives(self):
        key = generate_keypair(seed=162)
        from repro.asn1.oid import OID_ORGANIZATION_NAME

        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .subject_attr(OID_ORGANIZATION_NAME, "Störi AG ")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(subject_alt_name(GeneralName.dns("ok.example.com")))
            .sign(key)
        )
        text = report_to_json(run_lints(cert), cert)
        assert "Störi" in text  # ensure_ascii=False

    def test_include_passes(self):
        report = run_lints(dirty_cert())
        payload = report_to_dict(report, include_passes=True)
        assert "passes" in payload and payload["passes"]

    def test_suppressed_section(self):
        old = (
            CertificateBuilder()
            .subject_cn("old.example.com")
            .not_before(dt.datetime(2009, 1, 1))
            .sign(KEY)
        )
        payload = report_to_dict(run_lints(old))
        suppressed = [f["lint"] for f in payload["suppressed_by_effective_date"]]
        assert "w_cab_subject_common_name_not_in_san" in suppressed


class TestSummarySerialization:
    def test_summary_dict(self):
        summary = summarize([run_lints(dirty_cert())])
        payload = summary_to_dict(summary)
        assert payload["total"] == 1
        assert payload["noncompliant"] == 1
        assert json.dumps(payload)  # serializable


class TestRoundTripFidelity:
    """PR 2 satellite: report_to_json → parse → the same findings,
    severities, and citations as the in-memory report objects."""

    def _crafted_noncompliant(self):
        key = generate_keypair(seed=163)
        from repro.asn1.oid import OID_ORGANIZATION_NAME

        # NUL in the CN, trailing space in O, CN absent from the SAN:
        # several distinct lints with distinct severities fire at once.
        return (
            CertificateBuilder()
            .subject_cn("evil\x00.example.com")
            .subject_attr(OID_ORGANIZATION_NAME, "Tricky Corp ")
            .not_before(dt.datetime(2024, 6, 1))
            .add_extension(subject_alt_name(GeneralName.dns("other.example.net")))
            .sign(key)
        )

    def test_findings_severities_citations_survive(self):
        cert = self._crafted_noncompliant()
        report = run_lints(cert)
        assert report.findings, "crafted cert must be noncompliant"
        parsed = json.loads(report_to_json(report, cert))

        expected = [
            {
                "lint": r.lint.name,
                "status": r.status.value,
                "severity": r.lint.severity.value,
                "type": r.lint.nc_type.value,
                "citation": r.lint.citation,
            }
            for r in report.findings
        ]
        actual = [
            {k: f[k] for k in ("lint", "status", "severity", "type", "citation")}
            for f in parsed["findings"]
        ]
        assert actual == expected
        assert len({f["severity"] for f in parsed["findings"]}) >= 1
        assert all(f["citation"] for f in parsed["findings"])

    def test_parse_reserialize_is_stable(self):
        cert = self._crafted_noncompliant()
        report = run_lints(cert)
        text = report_to_json(report, cert)
        reserialized = json.dumps(
            json.loads(text), indent=2, ensure_ascii=False, sort_keys=True
        )
        assert reserialized == text

    def test_certificate_block_matches_cert(self):
        cert = self._crafted_noncompliant()
        parsed = json.loads(report_to_json(run_lints(cert), cert))
        block = parsed["certificate"]
        assert block["fingerprint_sha256"] == cert.fingerprint()
        assert block["serial"] == cert.serial
        assert block["subject"] == cert.subject.rfc4514_string()
        assert block["not_before"] == cert.not_before.isoformat()

    def test_suppressed_findings_round_trip_too(self):
        key = generate_keypair(seed=164)
        old = (
            CertificateBuilder()
            .subject_cn("vintage.example.com")
            .not_before(dt.datetime(2009, 1, 1))
            .sign(key)
        )
        report = run_lints(old)
        parsed = json.loads(report_to_json(report, old))
        assert [f["lint"] for f in parsed["suppressed_by_effective_date"]] == [
            r.lint.name for r in report.suppressed_by_effective_date
        ]
        assert parsed["noncompliant_ignoring_effective_dates"] is bool(
            report.noncompliant_ignoring_dates
        )
