"""Behavioural tests for Illegal Format, Invalid Structure, Discouraged Field,
and Bad Normalization lints."""

import datetime as dt

from repro.asn1 import IA5_STRING, UTF8_STRING
from repro.asn1.oid import (
    OID_COUNTRY_NAME,
    OID_CP_DOMAIN_VALIDATED,
    OID_ORGANIZATION_NAME,
    OID_QT_UNOTICE,
)
from repro.lint import run_lints
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    PolicyInformation,
    PolicyQualifier,
    UserNotice,
    certificate_policies,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=13)
WHEN = dt.datetime(2024, 6, 1)


def builder(cn="ok.example.com", san=True):
    b = CertificateBuilder().subject_cn(cn).not_before(WHEN)
    if san:
        b.add_extension(subject_alt_name(GeneralName.dns(cn)))
    return b


def fired(cert):
    return set(run_lints(cert).fired_lints())


class TestLengthLints:
    def test_cn_too_long(self):
        long_cn = "a" * 70 + ".example.com"
        cert = builder(cn=long_cn).sign(KEY)
        assert "e_subject_common_name_max_length" in fired(cert)

    def test_o_too_long(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "x" * 65).sign(KEY)
        assert "e_subject_organization_name_max_length" in fired(cert)

    def test_within_bounds_passes(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "x" * 64).sign(KEY)
        assert "e_subject_organization_name_max_length" not in fired(cert)


class TestCountryShape:
    def test_full_country_name(self):
        cert = builder().subject_attr(OID_COUNTRY_NAME, "Germany").sign(KEY)
        assert "e_subject_country_not_two_letter" in fired(cert)

    def test_lowercase(self):
        cert = builder().subject_attr(OID_COUNTRY_NAME, "de").sign(KEY)
        assert "e_subject_country_not_uppercase" in fired(cert)

    def test_comma_variant(self):
        # Paper F5: "DE,de" style values.
        cert = builder().subject_attr(OID_COUNTRY_NAME, "DE,de").sign(KEY)
        assert "e_subject_country_not_two_letter" in fired(cert)

    def test_clean(self):
        cert = builder().subject_attr(OID_COUNTRY_NAME, "DE").sign(KEY)
        found = fired(cert)
        assert "e_subject_country_not_two_letter" not in found
        assert "e_subject_country_not_uppercase" not in found


class TestDNSShape:
    def test_label_too_long(self):
        name = "b" * 64 + ".example.com"
        cert = builder(cn=name).sign(KEY)
        assert "e_dns_label_too_long" in fired(cert)

    def test_name_too_long(self):
        name = ".".join(["a" * 60] * 5) + ".com"
        cert = builder(cn=name).sign(KEY)
        assert "e_dns_name_too_long" in fired(cert)

    def test_empty_label(self):
        cert = builder(cn="a..example.com").sign(KEY)
        assert "e_dns_label_empty" in fired(cert)

    def test_hyphen_edge(self):
        cert = builder(cn="-bad.example.com").sign(KEY)
        assert "e_dns_label_hyphen_at_edge" in fired(cert)

    def test_port_in_san(self):
        cert = builder(cn="host.example.com:8443").sign(KEY)
        assert "e_san_dns_name_includes_port_or_path" in fired(cert)


class TestEmailURIShape:
    def test_email_no_at(self):
        cert = (
            builder()
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"), GeneralName.email("not-an-email")
                )
            )
            .sign(KEY)
        )
        # This builder produced two SANs; rebuild with a single one.
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"), GeneralName.email("not-an-email")
                )
            )
            .sign(KEY)
        )
        assert "e_rfc822_invalid_syntax" in fired(cert)

    def test_uri_without_scheme(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"), GeneralName.uri("no-scheme-here")
                )
            )
            .sign(KEY)
        )
        assert "e_uri_invalid_scheme" in fired(cert)


class TestEmptyValues:
    def test_empty_subject_attr(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "").sign(KEY)
        assert "e_subject_empty_attribute_value" in fired(cert)

    def test_empty_san(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(subject_alt_name())
            .sign(KEY)
        )
        assert "e_ext_san_empty_name" in fired(cert)


class TestExplicitTextLength:
    def test_too_long(self):
        policy = PolicyInformation(
            OID_CP_DOMAIN_VALIDATED,
            qualifiers=[
                PolicyQualifier(
                    OID_QT_UNOTICE, user_notice=UserNotice("x" * 201, UTF8_STRING)
                )
            ],
        )
        cert = builder().add_extension(certificate_policies(policy)).sign(KEY)
        assert "e_rfc_ext_cp_explicit_text_too_long" in fired(cert)


class TestStructure:
    def test_cn_not_in_san(self):
        cert = builder(cn="cn.example.com", san=False).add_extension(
            subject_alt_name(GeneralName.dns("other.example.com"))
        ).sign(KEY)
        assert "w_cab_subject_common_name_not_in_san" in fired(cert)

    def test_cn_matches_case_insensitively(self):
        cert = builder(cn="HOST.Example.COM", san=False).add_extension(
            subject_alt_name(GeneralName.dns("host.example.com"))
        ).sign(KEY)
        assert "w_cab_subject_common_name_not_in_san" not in fired(cert)

    def test_unicode_cn_matches_alabel_san(self):
        cert = builder(cn="münchen.de", san=False).add_extension(
            subject_alt_name(GeneralName.dns("xn--mnchen-3ya.de"))
        ).sign(KEY)
        assert "w_cab_subject_common_name_not_in_san" not in fired(cert)

    def test_duplicate_attribute(self):
        cert = builder().subject_cn("ok.example.com").sign(KEY)
        # builder() already added one CN, so this cert has two.
        found = fired(cert)
        assert "e_subject_dn_duplicate_attribute" in found
        assert "w_cab_subject_contain_extra_common_name" in found


class TestDiscouraged:
    def test_san_uri_discouraged(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.uri("https://ok.example.com/"),
                )
            )
            .sign(KEY)
        )
        assert "w_ext_san_uri_discouraged" in fired(cert)


class TestNormalization:
    def test_nfd_utf8_attr(self):
        # "é" in NFD (e + combining acute).
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "Cafe\u0301").sign(KEY)
        assert "w_rfc_utf8_string_not_nfc" in fired(cert)

    def test_nfc_passes(self):
        cert = builder().subject_attr(OID_ORGANIZATION_NAME, "Café").sign(KEY)
        assert "w_rfc_utf8_string_not_nfc" not in fired(cert)

    def test_idn_ulabel_not_nfc(self):
        # Build an A-label whose decoded form is NFD (non-NFC).
        from repro.uni import punycode

        nfd_label = "cafe\u0301"  # NFD form of café
        alabel = "xn--" + punycode.encode(nfd_label)
        cert = builder(cn=f"{alabel}.com").sign(KEY)
        assert "e_rfc_dns_idn_u_label_not_nfc" in fired(cert)

    def test_alabel_roundtrip_mismatch(self):
        # Uppercase basic code points inside the Punycode payload decode
        # fine but re-encode differently (lowercased).
        cert = builder(cn="xn--MNCHEN-3ya.de").sign(KEY)
        report = run_lints(cert)
        # Either the roundtrip lint or the unpermitted-char lint fires
        # (uppercase decodes to an uppercase U-label -> DISALLOWED).
        assert {
            "e_rfc_dns_idn_alabel_roundtrip_mismatch",
            "e_rfc_dns_idn_a2u_unpermitted_unichar",
        } & set(report.fired_lints())

    def test_smtp_mailbox_nfc(self):
        cert = (
            CertificateBuilder()
            .subject_cn("ok.example.com")
            .not_before(WHEN)
            .add_extension(
                subject_alt_name(
                    GeneralName.dns("ok.example.com"),
                    GeneralName.smtp_utf8_mailbox("usér@example.com"),
                )
            )
            .sign(KEY)
        )
        assert "e_smtp_utf8_mailbox_not_nfc" in fired(cert)
