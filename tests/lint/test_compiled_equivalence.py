"""Equivalence proof for the compiled char-class dispatch path.

The compiled plan (:mod:`repro.lint.compiled`) is an over-approximation:
a lint's trigger bits staying clear must *prove* compliance, and fired
bits must hand off to the real check byte-for-byte.  These tests pin
that contract three ways: per-report equivalence against both the
interpreted dispatch and the unoptimized reference over a seeded
corpus (jobs 1 and 4, fork and spawn pools), byte-identical replay of
the committed fuzz witness corpus (adversarial inputs are exactly where
a fused scanner would diverge), and plan-coverage invariants against
the reviewed ``UNCOMPILED_MANIFEST``.
"""

import base64
import json
import pathlib

import pytest

from repro.ct import CorpusGenerator
from repro.engine import EngineStats
from repro.lint import (
    REGISTRY,
    index_for,
    lint_corpus_parallel,
    run_lints,
    summary_to_json,
)
from repro.lint.compiled import (
    UNCOMPILED_MANIFEST,
    compiling_disabled,
    warm_default_plan,
)
from repro.lint.parallel import LintPool
from repro.lint.serialization import report_to_json
from repro.x509 import Certificate

WITNESS_DIR = pathlib.Path(__file__).resolve().parents[2] / "fuzz" / "witnesses"


@pytest.fixture(scope="module")
def corpus():
    # ~170 records spanning the generator's issuer/IDN/noncompliance mix.
    return CorpusGenerator(seed=11, scale=1 / 200000).generate()


def _report_shape(report):
    return [(r.lint.name, r.status, r.details) for r in report.results]


class TestCompiledReportEquivalence:
    def test_every_report_identical_across_dispatchers(self, corpus):
        for record in corpus.records:
            reference = run_lints(
                record.certificate, issued_at=record.issued_at, optimized=False
            )
            interpreted = run_lints(
                record.certificate, issued_at=record.issued_at, compiled=False
            )
            compiled = run_lints(record.certificate, issued_at=record.issued_at)
            assert _report_shape(compiled) == _report_shape(reference)
            assert _report_shape(interpreted) == _report_shape(reference)

    def test_summary_identical_across_jobs_and_dispatch(self, corpus):
        baseline = summary_to_json(
            lint_corpus_parallel(corpus, jobs=1, optimized=False).summary
        )
        for jobs in (1, 4):
            compiled = lint_corpus_parallel(corpus, jobs=jobs)
            interpreted = lint_corpus_parallel(corpus, jobs=jobs, compiled=False)
            assert summary_to_json(compiled.summary) == baseline
            assert summary_to_json(interpreted.summary) == baseline

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pool_equivalence_across_start_methods(self, corpus, start_method):
        baseline = summary_to_json(lint_corpus_parallel(corpus, jobs=1).summary)
        with LintPool(2, start_method=start_method) as pool:
            pool.prewarm()
            outcome = lint_corpus_parallel(corpus, jobs=2, pool=pool)
        assert summary_to_json(outcome.summary) == baseline

    def test_compiling_disabled_context_pins_interpreted_path(self, corpus):
        record = corpus.records[0]
        reference = _report_shape(
            run_lints(record.certificate, issued_at=record.issued_at, compiled=False)
        )
        with compiling_disabled():
            pinned = _report_shape(
                run_lints(record.certificate, issued_at=record.issued_at)
            )
        assert pinned == reference


class TestWitnessReplayEquivalence:
    """Satellite: the committed fuzz corpus through the compiled registry."""

    def _witness_ders(self):
        files = sorted(WITNESS_DIR.glob("cell-*.json"))
        assert len(files) >= 97, f"expected the committed witness corpus, got {files}"
        for path in files:
            yield path.name, base64.b64decode(
                json.loads(path.read_text())["der_b64"]
            )

    def test_all_witnesses_byte_identical(self):
        replayed = 0
        for name, der in self._witness_ders():
            # Fresh objects per dispatcher: no memoized view may leak
            # results from one path into the other.
            cert_ref = Certificate.from_der(der)
            cert_new = Certificate.from_der(der)
            reference = report_to_json(
                run_lints(cert_ref, optimized=False), cert_ref
            )
            compiled = report_to_json(run_lints(cert_new), cert_new)
            interpreted = report_to_json(
                run_lints(cert_new, compiled=False), cert_new
            )
            assert compiled == reference, f"compiled diverged on {name}"
            assert interpreted == reference, f"interpreted diverged on {name}"
            replayed += 1
        assert replayed >= 97


class TestCompiledPlanCoverage:
    def test_uncompiled_exactly_matches_manifest(self):
        plan = index_for(REGISTRY.snapshot()).compiled_plan()
        assert set(plan.uncompiled_names) == set(UNCOMPILED_MANIFEST)

    def test_plan_partitions_the_registry(self):
        plan = index_for(REGISTRY.snapshot()).compiled_plan()
        registered = {lint.metadata.name for lint in REGISTRY.snapshot()}
        compiled = set(plan.compiled_names)
        uncompiled = set(plan.uncompiled_names)
        assert compiled | uncompiled == registered
        assert not compiled & uncompiled
        # The compiler must cover the overwhelming majority of the
        # registry — falling back interpreted is the exception.
        assert len(compiled) >= 90


class TestCompileStageStats:
    def test_warm_records_compile_stage_once(self):
        index = index_for(REGISTRY.snapshot())
        built = index._compiled_plan
        index._compiled_plan = None
        try:
            stats = EngineStats()
            warm_default_plan(stats)
            assert "compile" in stats.stage_wall_seconds()
        finally:
            index._compiled_plan = built or index._compiled_plan
        rewarm = EngineStats()
        warm_default_plan(rewarm)
        assert "compile" not in rewarm.stage_wall_seconds()
