"""Tests for the command-line interface."""

import datetime as dt

import pytest

from repro.cli import main
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=121)


def write_cert(tmp_path, cn, san=None, pem=True):
    builder = CertificateBuilder().subject_cn(cn).not_before(dt.datetime(2024, 1, 1))
    if san:
        builder.add_extension(subject_alt_name(GeneralName.dns(san)))
    der = builder.sign(KEY).to_der()
    path = tmp_path / "cert.pem"
    if pem:
        path.write_text(encode_pem(der))
    else:
        path.write_bytes(der)
    return str(path)


class TestLintCommand:
    def test_compliant_exit_zero(self, tmp_path, capsys):
        path = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        assert main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert "compliant: no findings" in out

    def test_noncompliant_exit_one(self, tmp_path, capsys):
        path = write_cert(tmp_path, "bad\x00cn.example.com", san="other.example.com")
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "finding(s):" in out
        assert "e_rfc_subject_dn_not_printable_characters" in out

    def test_der_input(self, tmp_path):
        path = write_cert(tmp_path, "ok.example.com", san="ok.example.com", pem=False)
        assert main(["lint", path]) == 0

    def test_ignore_effective_dates_flag(self, tmp_path, capsys):
        # An old cert with CN-not-in-SAN: suppressed normally, flagged
        # with the override.
        builder = (
            CertificateBuilder()
            .subject_cn("old.example.com")
            .not_before(dt.datetime(2009, 1, 1))
        )
        path = tmp_path / "old.pem"
        path.write_text(encode_pem(builder.sign(KEY).to_der()))
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--ignore-effective-dates"]) == 1


class TestRulesCommand:
    def test_lists_95(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "95 rule(s)" in out

    def test_new_only(self, capsys):
        assert main(["rules", "--new-only"]) == 0
        out = capsys.readouterr().out
        assert "50 rule(s)" in out

    def test_type_filter(self, capsys):
        assert main(["rules", "--type", "Bad Normalization"]) == 0
        out = capsys.readouterr().out
        assert "4 rule(s)" in out

    def test_verbose(self, capsys):
        assert main(["rules", "--new-only", "-v"]) == 0
        out = capsys.readouterr().out
        assert "structures:" in out


class TestCorpusCommand:
    def test_tiny_corpus(self, capsys):
        assert main(["corpus", "--scale", "0.00002", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "noncompliant:" in out
        assert "top lints:" in out

    def test_jobs_output_byte_identical(self, capsys):
        # Satellite acceptance: same seed, --jobs 4 vs --jobs 1, the
        # printed compliance landscape must match byte for byte.
        args = ["corpus", "--scale", "0.00001", "--seed", "3"]
        assert main(args + ["--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel
        assert "noncompliant:" in sequential


class TestDifferentialCommand:
    def test_matrices_printed(self, capsys):
        assert main(["differential"]) == 0
        out = capsys.readouterr().out
        assert "decoding matrix" in out
        assert "character checks" in out
