"""Tests for the command-line interface."""

import datetime as dt

import pytest

from repro.cli import main
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=121)


def write_cert(tmp_path, cn, san=None, pem=True):
    builder = CertificateBuilder().subject_cn(cn).not_before(dt.datetime(2024, 1, 1))
    if san:
        builder.add_extension(subject_alt_name(GeneralName.dns(san)))
    der = builder.sign(KEY).to_der()
    path = tmp_path / "cert.pem"
    if pem:
        path.write_text(encode_pem(der))
    else:
        path.write_bytes(der)
    return str(path)


class TestLintCommand:
    def test_compliant_exit_zero(self, tmp_path, capsys):
        path = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        assert main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert "compliant: no findings" in out

    def test_noncompliant_exit_one(self, tmp_path, capsys):
        path = write_cert(tmp_path, "bad\x00cn.example.com", san="other.example.com")
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "finding(s):" in out
        assert "e_rfc_subject_dn_not_printable_characters" in out

    def test_der_input(self, tmp_path):
        path = write_cert(tmp_path, "ok.example.com", san="ok.example.com", pem=False)
        assert main(["lint", path]) == 0

    def test_ignore_effective_dates_flag(self, tmp_path, capsys):
        # An old cert with CN-not-in-SAN: suppressed normally, flagged
        # with the override.
        builder = (
            CertificateBuilder()
            .subject_cn("old.example.com")
            .not_before(dt.datetime(2009, 1, 1))
        )
        path = tmp_path / "old.pem"
        path.write_text(encode_pem(builder.sign(KEY).to_der()))
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--ignore-effective-dates"]) == 1


class TestRulesCommand:
    def test_lists_95(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "95 rule(s)" in out

    def test_new_only(self, capsys):
        assert main(["rules", "--new-only"]) == 0
        out = capsys.readouterr().out
        assert "50 rule(s)" in out

    def test_type_filter(self, capsys):
        assert main(["rules", "--type", "Bad Normalization"]) == 0
        out = capsys.readouterr().out
        assert "4 rule(s)" in out

    def test_verbose(self, capsys):
        assert main(["rules", "--new-only", "-v"]) == 0
        out = capsys.readouterr().out
        assert "structures:" in out


class TestCorpusCommand:
    def test_tiny_corpus(self, capsys):
        assert main(["corpus", "--scale", "0.00002", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "noncompliant:" in out
        assert "top lints:" in out

    def test_jobs_output_byte_identical(self, capsys):
        # Satellite acceptance: same seed, --jobs 4 vs --jobs 1, the
        # printed compliance landscape must match byte for byte.
        args = ["corpus", "--scale", "0.00001", "--seed", "3"]
        assert main(args + ["--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel
        assert "noncompliant:" in sequential


class TestDifferentialCommand:
    def test_matrices_printed(self, capsys):
        assert main(["differential"]) == 0
        out = capsys.readouterr().out
        assert "decoding matrix" in out
        assert "character checks" in out


class TestLintMultipleFiles:
    """PR 2 satellite: several files in one invocation, per-file status
    on stderr, worst per-file status as the exit code."""

    def test_two_files_worst_status_wins(self, tmp_path, capsys):
        good = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        bad_path = tmp_path / "bad.pem"
        builder = (
            CertificateBuilder()
            .subject_cn("bad\x00cn.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(subject_alt_name(GeneralName.dns("other.example.com")))
        )
        bad_path.write_text(encode_pem(builder.sign(KEY).to_der()))
        assert main(["lint", good, str(bad_path)]) == 1
        captured = capsys.readouterr()
        assert f"== {good} ==" in captured.out
        assert f"== {bad_path} ==" in captured.out
        assert f"{good}: compliant (0)" in captured.err
        assert f"{bad_path}: noncompliant (1)" in captured.err

    def test_unreadable_file_status_two_dominates(self, tmp_path, capsys):
        good = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        missing = str(tmp_path / "does-not-exist.pem")
        assert main(["lint", good, missing]) == 2
        captured = capsys.readouterr()
        assert f"{missing}: error (2)" in captured.err
        assert "cannot read" in captured.err

    def test_single_file_output_is_unchanged(self, tmp_path, capsys):
        # No headers, no stderr status lines: the historical format the
        # service parity tests depend on.
        path = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        assert main(["lint", path]) == 0
        captured = capsys.readouterr()
        assert "==" not in captured.out
        assert captured.err == ""

    def test_multi_file_json_emits_one_document_per_file(self, tmp_path, capsys):
        import json as json_mod

        a = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        b_path = tmp_path / "b.pem"
        b_path.write_text(
            encode_pem(
                CertificateBuilder()
                .subject_cn("two.example.com")
                .not_before(dt.datetime(2024, 1, 1))
                .add_extension(subject_alt_name(GeneralName.dns("two.example.com")))
                .sign(KEY)
                .to_der()
            )
        )
        assert main(["lint", a, str(b_path), "--json"]) == 0
        captured = capsys.readouterr()
        documents = json_mod.loads("[" + captured.out.replace("}\n{", "},{") + "]")
        assert len(documents) == 2
        assert all("findings" in document for document in documents)
