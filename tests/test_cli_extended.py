"""Tests for the JSON and dataset-export CLI paths."""

import datetime as dt
import json

from repro.cli import main
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=171)


def write_cert(tmp_path, cn, san=None):
    builder = CertificateBuilder().subject_cn(cn).not_before(dt.datetime(2024, 1, 1))
    if san:
        builder.add_extension(subject_alt_name(GeneralName.dns(san)))
    path = tmp_path / "cert.pem"
    path.write_text(encode_pem(builder.sign(KEY).to_der()))
    return str(path)


class TestJSONOutput:
    def test_json_report(self, tmp_path, capsys):
        path = write_cert(tmp_path, "bad\x00.example.com", san="other.example.com")
        assert main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["noncompliant"] is True
        assert payload["certificate"]["fingerprint_sha256"]

    def test_json_compliant(self, tmp_path, capsys):
        path = write_cert(tmp_path, "ok.example.com", san="ok.example.com")
        assert main(["lint", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestCorpusExport:
    def test_export_then_reload(self, tmp_path, capsys):
        target = tmp_path / "released"
        assert (
            main(
                [
                    "corpus",
                    "--scale",
                    "0.00001",
                    "--seed",
                    "5",
                    "--export",
                    str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "exported corpus to" in out
        from repro.ct import load_corpus

        loaded = load_corpus(target)
        assert len(loaded.records) > 0


class TestBadInput:
    def test_unparseable_input_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.pem"
        path.write_bytes(b"not a certificate")
        assert main(["lint", str(path)]) == 2
        assert "not a parseable certificate" in capsys.readouterr().err
