"""Tests for the Section 6.1 CT-monitor-misleading experiment."""

import pytest

from repro.threats import (
    TECHNIQUES,
    concealment_matrix,
    craft_forged_certificates,
    run_experiment,
)

VICTIM = "victim.example.com"


@pytest.fixture(scope="module")
def results():
    return run_experiment(VICTIM)


class TestCrafting:
    def test_one_cert_per_technique(self):
        forged = craft_forged_certificates(VICTIM)
        assert set(forged) == set(TECHNIQUES)

    def test_nul_cert_contains_victim(self):
        forged = craft_forged_certificates(VICTIM)
        assert VICTIM in forged["nul_in_cn"].subject_common_names[0]
        assert "\x00" in forged["nul_in_cn"].subject_common_names[0]

    def test_zero_width_is_an_alabel(self):
        forged = craft_forged_certificates(VICTIM)
        assert forged["zero_width_label"].subject_common_names[0].startswith("xn--")


class TestExperiment:
    def test_full_coverage(self, results):
        pairs = {(r.monitor, r.technique) for r in results}
        assert len(pairs) == 5 * len(TECHNIQUES)

    def test_case_variation_concealed_nowhere(self, results):
        # P1.1: case-insensitive search defeats case variation.
        for r in results:
            if r.technique == "case_variation":
                assert not r.concealed, r.monitor

    def test_sslmate_special_char_concealment(self, results):
        # P1.4: SSLMate fails to index certs with special characters.
        outcome = {r.technique: r.concealed for r in results if r.monitor == "SSLMate Spotter"}
        assert outcome["nul_in_cn"]
        assert outcome["space_in_cn"]

    def test_exact_match_monitors_miss_subdomains(self, results):
        # P1.2: no fuzzy search -> subdomain variants hide.
        for r in results:
            if r.technique == "subdomain_variant":
                if r.monitor in ("SSLMate Spotter", "Facebook Monitor", "Entrust Search"):
                    assert r.concealed, r.monitor
                if r.monitor in ("Crt.sh", "MerkleMap"):
                    assert not r.concealed, r.monitor

    def test_fuzzy_monitors_catch_nul(self, results):
        # Substring search still finds the victim name around a NUL.
        for r in results:
            if r.technique == "nul_in_cn" and r.monitor in ("Crt.sh", "MerkleMap"):
                assert not r.concealed, r.monitor

    def test_every_monitor_concealable_somehow(self, results):
        # The paper's core claim: monitors can be misled.
        by_monitor: dict[str, list[bool]] = {}
        for r in results:
            by_monitor.setdefault(r.monitor, []).append(r.concealed)
        for monitor, concealed in by_monitor.items():
            assert any(concealed), monitor

    def test_matrix_shape(self, results):
        matrix = concealment_matrix(results)
        assert set(matrix) == set(TECHNIQUES)
        assert all(len(row) == 5 for row in matrix.values())
