"""Tests for the Section 6.2 traffic-obfuscation models."""

import datetime as dt

import pytest

from repro.asn1 import UTF8_STRING
from repro.asn1.oid import OID_ORGANIZATION_NAME
from repro.threats import (
    ALL_CLIENTS,
    ALL_MIDDLEBOXES,
    HTTPCLIENT,
    LIBCURL,
    REQUESTS,
    SNORT,
    SURICATA,
    URLLIB3,
    ZEEK,
    duplicate_position_evasion,
    evasion_experiment,
)
from repro.uni import VariantStrategy
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=61)


def cert_with_org(org: str, cn: str = "c2.example.com"):
    return (
        CertificateBuilder()
        .subject_cn(cn)
        .subject_attr(OID_ORGANIZATION_NAME, org, UTF8_STRING)
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns(cn)))
        .sign(KEY)
    )


class TestMiddleboxExtraction:
    def test_three_engines(self):
        assert {m.name for m in ALL_MIDDLEBOXES} == {"Snort", "Suricata", "Zeek"}

    def test_exact_match_blocks(self):
        cert = cert_with_org("Evil Entity")
        for middlebox in ALL_MIDDLEBOXES:
            assert middlebox.matches_rule(cert, "Evil Entity"), middlebox.name

    def test_suricata_case_sensitive_bypass(self):
        # P2.1: Suricata's case-sensitive matching is bypassed by case
        # variants; Snort/Zeek match case-insensitively.
        cert = cert_with_org("EVIL ENTITY")
        assert not SURICATA.matches_rule(cert, "Evil Entity")
        assert SNORT.matches_rule(cert, "Evil Entity")

    def test_nul_byte_evades_all(self):
        cert = cert_with_org("Evil\x00 Entity")
        for middlebox in ALL_MIDDLEBOXES:
            assert not middlebox.matches_rule(cert, "Evil Entity"), middlebox.name

    def test_zeek_ignores_non_ia5_san(self):
        cert = (
            CertificateBuilder()
            .subject_cn("benign.example.net")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(
                subject_alt_name(GeneralName.dns("evil.example.com", spec=UTF8_STRING))
            )
            .sign(KEY)
        )
        # The SAN bytes are ASCII here, so craft a genuinely non-IA5 one.
        cert2 = (
            CertificateBuilder()
            .subject_cn("benign.example.net")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(
                subject_alt_name(GeneralName.dns("evil中.example.com", spec=UTF8_STRING))
            )
            .sign(KEY)
        )
        assert not ZEEK.matches_rule(cert2, "evil中.example.com")
        assert SNORT.matches_rule(cert2, "evil中.example.com")


class TestDuplicatePositionEvasion:
    def test_opposite_positions(self):
        outcome = duplicate_position_evasion("evil.example.com")
        assert outcome["snort_evaded_by_evil_last"]
        assert outcome["snort_catches_evil_first"]
        assert outcome["zeek_evaded_by_evil_first"]
        assert outcome["zeek_catches_evil_last"]


class TestVariantEvasion:
    def test_experiment_runs(self):
        results = evasion_experiment("Evil Entity Ltd")
        assert results

    def test_nonprintable_variant_evades_everything(self):
        results = evasion_experiment("Evil Entity Ltd")
        non_printable = [
            r for r in results if r.strategy is VariantStrategy.NON_PRINTABLE_ADDITION
        ]
        assert non_printable and all(r.evaded for r in non_printable)

    def test_case_variant_evades_only_suricata(self):
        results = evasion_experiment("Evil Entity Ltd")
        case_results = {
            r.middlebox: r.evaded
            for r in results
            if r.strategy is VariantStrategy.CASE_CONVERSION
        }
        assert case_results["Suricata"]
        assert not case_results["Snort"]
        assert not case_results["Zeek"]


class TestClientSANChecks:
    def test_four_clients(self):
        assert len(ALL_CLIENTS) == 4

    def test_urllib3_accepts_ulabel_san(self):
        # P2.2: urllib3 restricts SANs to Latin-1 without punycode checks.
        assert URLLIB3.accepts_san_value("münchen.de")
        assert REQUESTS.accepts_san_value("münchen.de")

    def test_urllib3_rejects_wide_unicode(self):
        assert not URLLIB3.accepts_san_value("中国.example.com")

    def test_libcurl_requires_ascii(self):
        assert not LIBCURL.accepts_san_value("münchen.de")
        assert LIBCURL.accepts_san_value("xn--mnchen-3ya.de")

    def test_libcurl_validates_punycode(self):
        assert not LIBCURL.accepts_san_value("xn--999999999.de")

    def test_httpclient_skips_punycode_validation(self):
        assert HTTPCLIENT.accepts_san_value("xn--999999999.de")
