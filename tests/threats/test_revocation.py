"""Tests for the CRL-subversion threat experiment (Section 5.2)."""

import datetime as dt

from repro.asn1.oid import OID_ORGANIZATION_NAME
from repro.threats.revocation import (
    CRLHostRegistry,
    RevocationClient,
    revocation_subversion_experiment,
)
from repro.tlslibs import GNUTLS, PYOPENSSL
from repro.x509 import (
    CertificateBuilder,
    Name,
    crl_distribution_points,
    generate_keypair,
)
from repro.x509.crl import build_crl


class TestExperiment:
    def test_pyopenssl_subverted(self):
        outcomes = revocation_subversion_experiment()
        # A correct parser checks the genuine URL and sees the revocation.
        assert outcomes["GnuTLS"].revoked
        assert not outcomes["GnuTLS"].accepted
        # The dot-rewriting parser fetches the attacker's host instead.
        assert outcomes["PyOpenSSL"].checked_url == "http://ssl.test.com/ca.crl"
        assert not outcomes["PyOpenSSL"].revoked
        assert outcomes["PyOpenSSL"].accepted

    def test_signature_check_defeats_the_attack(self):
        # A client verifying CRL signatures with the CA key soft-fails
        # on the attacker's CRL instead of trusting it.
        ca_key = generate_keypair(seed="revocation-ca")
        ca_name = Name.build([(OID_ORGANIZATION_NAME, "Compromised CA")])
        victim = (
            CertificateBuilder()
            .serial(666)
            .subject_cn("revoked.example.com")
            .issuer_name(ca_name)
            .not_before(dt.datetime(2024, 5, 1))
            .add_extension(crl_distribution_points("http://ssl\x01test.com/ca.crl"))
            .sign(ca_key)
        )
        registry = CRLHostRegistry()
        attacker_key = generate_keypair(seed="attacker")
        _fake, fake_der = build_crl(ca_name, attacker_key, revoked_serials=[])
        registry.publish("http://ssl.test.com/ca.crl", fake_der)
        client = RevocationClient(
            PYOPENSSL, registry, issuer_key=ca_key.public_key, hard_fail=True
        )
        outcome = client.check(victim)
        assert outcome.soft_failed
        assert outcome.revoked  # hard-fail policy blocks the connection


class TestClient:
    def test_no_crldp_soft_fails(self):
        key = generate_keypair(seed=91)
        cert = CertificateBuilder().subject_cn("x.example.com").not_before(
            dt.datetime(2024, 1, 1)
        ).sign(key)
        client = RevocationClient(GNUTLS, CRLHostRegistry())
        outcome = client.check(cert)
        assert outcome.soft_failed
        assert outcome.accepted

    def test_unreachable_host_soft_fails(self):
        key = generate_keypair(seed=92)
        cert = (
            CertificateBuilder()
            .subject_cn("x.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(crl_distribution_points("http://gone.example/c.crl"))
            .sign(key)
        )
        client = RevocationClient(GNUTLS, CRLHostRegistry())
        outcome = client.check(cert)
        assert outcome.soft_failed and not outcome.fetched
