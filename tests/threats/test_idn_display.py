"""Tests for the browser IDN display policy."""

from repro.threats.idn_display import (
    DisplayDecision,
    decide_domain_display,
    decide_label_display,
)


class TestLabelPolicy:
    def test_clean_latin(self):
        verdict = decide_label_display("example")
        assert verdict.decision is DisplayDecision.UNICODE

    def test_clean_german(self):
        assert decide_label_display("münchen").decision is DisplayDecision.UNICODE

    def test_clean_cjk(self):
        assert decide_label_display("中国").decision is DisplayDecision.UNICODE

    def test_japanese_mix_allowed(self):
        assert decide_label_display("日本ひらがなカタカナ").decision is DisplayDecision.UNICODE

    def test_mixed_latin_cyrillic_punycode(self):
        verdict = decide_label_display("gооgle")  # Cyrillic о
        assert verdict.decision is DisplayDecision.PUNYCODE
        assert "mixed scripts" in verdict.reason

    def test_whole_script_confusable(self):
        # Pure-Cyrillic lookalike of an ASCII word.
        verdict = decide_label_display("рауре")
        assert verdict.decision is DisplayDecision.PUNYCODE

    def test_invisible_character(self):
        verdict = decide_label_display("pay​pal")  # ZWSP
        assert verdict.decision is DisplayDecision.PUNYCODE
        assert "invisible" in verdict.reason

    def test_bidi_control(self):
        verdict = decide_label_display("www‮lapyap")
        assert verdict.decision is DisplayDecision.PUNYCODE

    def test_deviation_character(self):
        verdict = decide_label_display("straße")
        assert verdict.decision is DisplayDecision.PUNYCODE
        assert "deviation" in verdict.reason

    def test_alabel_resolves_recursively(self):
        assert decide_label_display("xn--mnchen-3ya").decision is DisplayDecision.UNICODE

    def test_bad_alabel_stays_punycode(self):
        verdict = decide_label_display("xn--www-hn0a")  # LRM + www
        assert verdict.decision is DisplayDecision.PUNYCODE

    def test_protected_skeleton(self):
        from repro.uni import skeleton

        protected = frozenset({skeleton("paypal")})
        verdict = decide_label_display("раураl", protected)  # Cyrillic mix
        assert verdict.decision is DisplayDecision.PUNYCODE


class TestDomainPolicy:
    def test_clean_domain(self):
        verdict = decide_domain_display("münchen.de")
        assert verdict.decision is DisplayDecision.UNICODE
        assert verdict.displayed == "münchen.de"

    def test_deceptive_label_punycoded(self):
        verdict = decide_domain_display("pay​pal.com")  # ZWSP
        assert verdict.decision is DisplayDecision.PUNYCODE
        assert verdict.displayed.startswith("xn--")

    def test_ascii_passthrough(self):
        verdict = decide_domain_display("plain.example.com")
        assert verdict.decision is DisplayDecision.UNICODE
        assert verdict.displayed == "plain.example.com"
