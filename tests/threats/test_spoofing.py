"""Tests for the browser rendering models (Appendix F.1 / Table 14)."""

import datetime as dt

from repro.threats import (
    ALL_BROWSERS,
    CHROMIUM,
    FIREFOX,
    SAFARI,
    apply_bidi_overrides,
    chrome_warning_spoof_demo,
)
from repro.x509 import CertificateBuilder, GeneralName, generate_keypair, subject_alt_name

KEY = generate_keypair(seed=71)


class TestBidiOverride:
    def test_figure7_example(self):
        # "www.‮lapyap‬.com" displays as "www.paypal.com".
        assert apply_bidi_overrides("www.‮lapyap‬.com") == "www.paypal.com"

    def test_plain_text_unchanged(self):
        assert apply_bidi_overrides("www.example.com") == "www.example.com"

    def test_unterminated_override(self):
        assert apply_bidi_overrides("ab‮cd") == "abdc"

    def test_nested_overrides(self):
        assert apply_bidi_overrides("‮ab‮cd‬ef‬") == "fecdba"

    def test_invisible_stripped(self):
        assert apply_bidi_overrides("pay​pal") == "paypal"


class TestRenderingPolicies:
    def test_three_families(self):
        assert {b.name for b in ALL_BROWSERS} == {"Firefox", "Safari", "Chromium-based"}

    def test_safari_marks_c0(self):
        # Safari/Chromium show visible markers for C0 controls (G1.1).
        assert "�" in SAFARI.render_value("evil\x01entity")

    def test_firefox_raw_c0(self):
        # Firefox renders robustly (raw), a potentially insecure choice.
        assert "\x01" in FIREFOX.render_value("evil\x01entity")

    def test_layout_controls_invisible_everywhere(self):
        # G1.1: invisible layout codes hide in all tested browsers.
        for browser in ALL_BROWSERS:
            assert browser.render_value("pay​pal") == "paypal", browser.name

    def test_homograph_not_detected(self):
        # G1.2: no browser flags Cyrillic-Latin homographs in the viewer.
        for browser in ALL_BROWSERS:
            assert not browser.flags_homograph("gооgle"), browser.name

    def test_greek_question_mark_substitution(self):
        # G1.2: U+037E misrendered as a semicolon, violating Unicode.
        assert CHROMIUM.render_value("a;b") == "a;b"
        assert ";" in CHROMIUM.render_value("a;b")


class TestWarningPages:
    def _cert(self, cn, san=None):
        builder = CertificateBuilder().subject_cn(cn).not_before(dt.datetime(2024, 1, 1))
        if san:
            builder.add_extension(subject_alt_name(GeneralName.dns(san)))
        return builder.sign(KEY)

    def test_chromium_uses_subject(self):
        cert = self._cert("subject.example.com", san="san.example.com")
        assert CHROMIUM.warning_page_identity(cert) == "subject.example.com"

    def test_firefox_uses_san(self):
        cert = self._cert("subject.example.com", san="san.example.com")
        assert FIREFOX.warning_page_identity(cert) == "san.example.com"

    def test_bidi_spoofed_warning(self):
        # Figure 7: the crafted CN renders as the trusted brand.
        cert = self._cert("www.‮lapyap‬.com")
        assert CHROMIUM.warning_page_identity(cert) == "www.paypal.com"
        assert CHROMIUM.spoof_feasible(cert)

    def test_clean_cert_not_spoofable(self):
        cert = self._cert("plain.example.com")
        assert not CHROMIUM.spoof_feasible(cert)

    def test_demo_helper(self):
        crafted, displayed = chrome_warning_spoof_demo()
        assert displayed == "www.paypal.com"
        assert crafted != displayed


class TestViewerComponents:
    def test_gecko_webkit_components(self):
        assert FIREFOX.components() == ("digest", "details", "general")
        assert SAFARI.components() == ("digest", "details", "general")

    def test_chromium_all_parts(self):
        assert CHROMIUM.components() == ("all",)

    def test_general_pane_skips_nonhost_values(self):
        assert FIREFOX.render_component("evil entity text", "general") is None
        assert FIREFOX.render_component("host.example.com", "general") == "host.example.com"

    def test_unknown_component_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FIREFOX.render_component("x", "warning-pane")

    def test_chromium_single_policy(self):
        assert CHROMIUM.render_component("pay​pal", "all") == "paypal"
