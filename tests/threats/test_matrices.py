"""Tests for the black-box Table 6 and Table 14 matrix derivations."""

from repro.threats.monitor_misleading import TABLE6_COLUMNS, derive_monitor_matrix
from repro.threats.spoofing import TABLE14_COLUMNS, derive_browser_matrix


class TestTable6Matrix:
    def test_shape(self):
        matrix = derive_monitor_matrix()
        assert len(matrix) == 5
        for features in matrix.values():
            assert set(features) == set(TABLE6_COLUMNS)

    def test_paper_cells(self):
        matrix = derive_monitor_matrix()
        # P1.1: everyone is case-insensitive.
        assert all(f["case_insensitive"] for f in matrix.values())
        # No monitor supports raw Unicode field search.
        assert not any(f["unicode_search"] for f in matrix.values())
        # Fuzzy search: only Crt.sh and MerkleMap.
        assert matrix["Crt.sh"]["fuzzy_search"]
        assert matrix["MerkleMap"]["fuzzy_search"]
        assert not matrix["SSLMate Spotter"]["fuzzy_search"]
        assert not matrix["Facebook Monitor"]["fuzzy_search"]
        assert not matrix["Entrust Search"]["fuzzy_search"]
        # U-label checks: SSLMate and Facebook only.
        assert matrix["SSLMate Spotter"]["ulabel_check"]
        assert matrix["Facebook Monitor"]["ulabel_check"]
        assert not matrix["Crt.sh"]["ulabel_check"]
        assert not matrix["Entrust Search"]["ulabel_check"]
        assert not matrix["MerkleMap"]["ulabel_check"]
        # Everyone handles Punycode; Entrust misses Punycode ccTLDs.
        assert all(f["punycode_idn"] for f in matrix.values())
        assert not matrix["Entrust Search"]["punycode_idn_cctld"]
        # SSLMate fails to return certs with special Unicode.
        assert matrix["SSLMate Spotter"]["fails_special_unicode"]
        assert not matrix["Crt.sh"]["fails_special_unicode"]


class TestTable14Matrix:
    def test_shape(self):
        matrix = derive_browser_matrix()
        assert set(matrix) == {"Firefox", "Safari", "Chromium-based"}
        for results in matrix.values():
            assert set(results) == set(TABLE14_COLUMNS)

    def test_paper_cells(self):
        matrix = derive_browser_matrix()
        # G1.1: layout controls are invisible in every browser.
        assert not any(r["layout_controls_visible"] for r in matrix.values())
        # C0/C1 controls leave some visible trace everywhere.
        assert all(r["c0_c1_visible"] for r in matrix.values())
        # G1.2: homographs feasible and substitutions incorrect everywhere.
        assert all(r["homograph_feasible"] for r in matrix.values())
        assert all(r["incorrect_substitution"] for r in matrix.values())
        # Range checking: only Chromium-based applies it.
        assert not matrix["Chromium-based"]["flawed_asn1_range_check"]
        assert matrix["Firefox"]["flawed_asn1_range_check"]
        assert matrix["Safari"]["flawed_asn1_range_check"]
        # G1.3: warning spoofing works on Chromium and Firefox, not Safari.
        assert matrix["Chromium-based"]["warning_spoof_feasible"]
        assert matrix["Firefox"]["warning_spoof_feasible"]
        assert not matrix["Safari"]["warning_spoof_feasible"]
