"""Tests for the kernel-coverage staticcheck checker.

The live-tree test pins the shipping invariant (every registered lint
is compiled or manifest-reviewed, and the manifest carries no stale
entries); the fixture tests inject a classifier and manifest to prove
each finding fires — and stops firing — for exactly the right reason.
"""

from repro.lint import REGISTRY
from repro.staticcheck.engine import CHECKER_NAMES, run_checkers
from repro.staticcheck.kernels import CHECKER, check_kernel_coverage
from repro.staticcheck.resolve import SourceIndex


def _lints(count=3):
    return REGISTRY.snapshot()[:count]


def _names(lints):
    return {lint.metadata.name for lint in lints}


class TestLiveTree:
    def test_live_registry_is_fully_covered(self):
        findings = check_kernel_coverage(REGISTRY.snapshot(), SourceIndex())
        assert findings == []

    def test_checker_is_registered_with_the_engine(self):
        assert CHECKER in CHECKER_NAMES
        findings = run_checkers(
            REGISTRY.snapshot(), SourceIndex(), checkers=[CHECKER]
        )
        assert findings == []


class TestFixtures:
    def test_unclassifiable_lint_outside_manifest_is_an_error(self):
        lints = _lints()
        findings = check_kernel_coverage(
            lints,
            SourceIndex(),
            manifest=frozenset(),
            classify=lambda lint: None,
        )
        assert len(findings) == len(lints)
        assert {f.severity for f in findings} == {"error"}
        assert {f.checker for f in findings} == {CHECKER}
        assert {f.anchor for f in findings} == _names(lints)

    def test_manifest_entry_suppresses_the_error(self):
        lints = _lints()
        reviewed = next(iter(_names(lints)))
        findings = check_kernel_coverage(
            lints,
            SourceIndex(),
            manifest=frozenset({reviewed}),
            classify=lambda lint: None,
        )
        assert len(findings) == len(lints) - 1
        assert reviewed not in {f.anchor for f in findings}

    def test_classified_manifest_entry_is_a_stale_warning(self):
        lints = _lints()
        stale = next(iter(_names(lints)))
        findings = check_kernel_coverage(
            lints,
            SourceIndex(),
            manifest=frozenset({stale}),
            classify=lambda lint: object(),
        )
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert findings[0].anchor == stale
        assert "now compiles" in findings[0].message

    def test_unregistered_manifest_entry_is_a_stale_warning(self):
        findings = check_kernel_coverage(
            _lints(),
            SourceIndex(),
            manifest=frozenset({"e_no_such_lint"}),
            classify=lambda lint: object(),
        )
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert findings[0].anchor == "e_no_such_lint"
        assert "not registered" in findings[0].message

    def test_fingerprints_are_stable_per_lint(self):
        lints = _lints(2)
        first = check_kernel_coverage(
            lints, SourceIndex(), manifest=frozenset(), classify=lambda l: None
        )
        second = check_kernel_coverage(
            lints, SourceIndex(), manifest=frozenset(), classify=lambda l: None
        )
        assert [f.fingerprint for f in first] == [f.fingerprint for f in second]
