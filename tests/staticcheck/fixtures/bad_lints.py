"""Planted violations for the staticcheck self-tests.

Each checker group must fire on this module *exactly once*:

1. family-soundness — ``e_fixture_wrong_family`` keys its ``applies``
   on the SAN but declares a Subject family;
2. registry-invariants (AST half) — ``ORPHAN`` is a ``FunctionLint``
   never passed to a registry ``register()`` call;
3. cache-safety — ``_mutating_check`` appends to the memoized
   ``cert.san.names`` view;
4. exception-hygiene — ``_sloppy_parse`` uses a bare ``except:``;
5. determinism — ``_jittered_check`` calls ``random.random()``.

The module is imported by the tests (to hand live lint objects to the
family checker) and scanned as source by the AST checkers; keep it
importable and keep each violation unique.
"""

import datetime as dt
import random

from repro.lint.context import FAMILY_SUBJECT_ANY
from repro.lint.framework import (
    FunctionLint,
    LintMetadata,
    LintRegistry,
    NoncomplianceType,
    Severity,
    Source,
)

FIXTURE_REGISTRY = LintRegistry()

_META = dict(
    description="fixture",
    citation="fixture citation",
    source=Source.RFC5280,
    nc_type=NoncomplianceType.INVALID_STRUCTURE,
    effective_date=dt.datetime(2019, 1, 1),
)


def _check_ok(cert):
    return True, ""


# Violation 1: applies() keys on the SAN, families says Subject.
WRONG_FAMILY = FIXTURE_REGISTRY.register(
    FunctionLint(
        LintMetadata(name="e_fixture_wrong_family", severity=Severity.ERROR, **_META),
        lambda cert: cert.san is not None,
        _check_ok,
        families={FAMILY_SUBJECT_ANY},
    )
)

# Violation 2: constructed but never registered.
ORPHAN = FunctionLint(
    LintMetadata(name="e_fixture_orphan", severity=Severity.ERROR, **_META),
    lambda cert: True,
    _check_ok,
)


def _mutating_check(cert):
    names = cert.san.names
    names.append(None)  # Violation 3: writes through the shared view.
    return True, ""


def _sloppy_parse(data):
    try:
        return int(data)
    except:  # noqa: E722 — Violation 4: planted bare except.
        return None


def _jittered_check(cert):
    return random.random() > 0.5, ""  # Violation 5: nondeterministic.
