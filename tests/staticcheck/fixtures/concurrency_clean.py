"""Fixture: the repaired twin of ``concurrency_bad`` — zero findings.

Same shapes, each violation fixed the way the live tree fixes it: the
worker memo carries the reviewed ``process-local`` annotation on its
definition, the coroutine awaits ``asyncio.sleep``, the submit target
is a module-level function, and the handle is context-managed.
"""

import asyncio

_MEMO: dict[bytes, int] = {}  # staticcheck: process-local


def _worker_main(der: bytes) -> int:
    _MEMO[der] = len(der)
    return _MEMO[der]


def launch(executor, items):
    return [executor.submit(_worker_main, item) for item in items]


async def collect(queue):
    await asyncio.sleep(0.01)
    return await queue.get()


def dispatch_clean(executor, payload):
    return executor.submit(_worker_main, payload)


def read_all(path):
    with open(path, "rb") as handle:
        return handle.read()
