"""Fixture: exactly one planted violation per concurrency checker.

Never imported by the tests — the concurrency checkers are pure AST
scans, and some plants (the lambda submit, the blocking sleep) must
never actually run.  Each function below carries exactly one violation
so the exactly-once assertions stay meaningful:

* ``_worker_main`` — **fork-cow**: item store into a module-level memo
  from a worker root (``executor.submit`` makes it one);
* ``collect`` — **async-blocking**: ``time.sleep`` on the event loop;
* ``dispatch_bad`` — **pickle-boundary**: a lambda handed to
  ``executor.submit``;
* ``leak_mapping`` — **resource-lifetime**: an ``open()`` handle with
  no context manager and no close-on-all-paths.
"""

import time

_MEMO: dict[bytes, int] = {}


def _worker_main(der: bytes) -> int:
    _MEMO[der] = len(der)  # planted: worker-reachable module-state write
    return _MEMO[der]


def launch(executor, items):
    return [executor.submit(_worker_main, item) for item in items]


async def collect(queue):
    time.sleep(0.01)  # planted: blocks the event loop
    return await queue.get()


def dispatch_bad(executor, payload):
    return executor.submit(lambda: payload)  # planted: unpicklable callable


def leak_mapping(path):
    handle = open(path, "rb")  # planted: no close() on any path
    return handle.read()
