"""Violation-free twin of ``bad_lints`` for the negative tests.

Every pattern here is the *repaired* form of a planted violation: the
declared family matches what ``applies`` reads, the lint is registered,
the cached view is copied before mutation, the except clause is narrow,
and nothing consults randomness or the clock.  All five checkers must
report zero findings on this module.
"""

import datetime as dt

from repro.lint.context import FAMILY_SAN_PRESENT
from repro.lint.framework import (
    FunctionLint,
    LintMetadata,
    LintRegistry,
    NoncomplianceType,
    Severity,
    Source,
)

FIXTURE_REGISTRY = LintRegistry()

_META = dict(
    description="fixture",
    citation="fixture citation",
    source=Source.RFC5280,
    nc_type=NoncomplianceType.INVALID_STRUCTURE,
    effective_date=dt.datetime(2019, 1, 1),
)


def _check_sorted_copy(cert):
    names = sorted(cert.san.names, key=lambda gn: gn.value)
    names.append(None)  # fine: ``sorted`` built a fresh list
    return bool(names), ""


RIGHT_FAMILY = FIXTURE_REGISTRY.register(
    FunctionLint(
        LintMetadata(name="e_fixture_right_family", severity=Severity.ERROR, **_META),
        lambda cert: cert.san is not None,
        _check_sorted_copy,
        families={FAMILY_SAN_PRESENT},
    )
)


def _careful_parse(data):
    try:
        return int(data)
    except ValueError:
        return None
