"""End-to-end tests for ``repro staticcheck`` (the acceptance gate).

The committed ``staticcheck_baseline.json`` accepts the reviewed
findings on the repaired tree, so the CLI must exit 0 there; planting a
mis-declared family into the live registry must flip the exit code to
non-zero without touching the baseline.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import REGISTRY
from repro.staticcheck import CHECKER_NAMES, load_baseline, run_staticcheck

from .fixtures import bad_lints

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "staticcheck_baseline.json"


@pytest.fixture()
def planted_registry():
    """Temporarily register the fixture's mis-declared lint."""
    lint = bad_lints.WRONG_FAMILY
    REGISTRY.register(lint)
    try:
        yield lint
    finally:
        REGISTRY._lints.pop(lint.metadata.name)
        REGISTRY._snapshot = None


class TestCliExitCodes:
    def test_repaired_tree_exits_zero_against_baseline(self, capsys):
        status = main(["staticcheck", "--baseline", str(BASELINE)])
        captured = capsys.readouterr()
        assert status == 0
        assert "0 new" in captured.out

    def test_planted_misdeclaration_exits_nonzero(self, capsys, planted_registry):
        status = main(
            ["staticcheck", "--baseline", str(BASELINE), "--fail-on", "error"]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert planted_registry.metadata.name in captured.out

    def test_fail_on_warning_is_stricter(self, tmp_path, capsys):
        # An empty baseline exposes the accepted warnings as new.
        empty = tmp_path / "empty_baseline.json"
        assert main(["staticcheck", "--baseline", str(empty)]) == 1
        capsys.readouterr()
        assert (
            main(
                [
                    "staticcheck",
                    "--baseline",
                    str(empty),
                    "--checker",
                    "exception-hygiene",
                ]
            )
            == 0  # hygiene alone reports only baselined warnings
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "staticcheck",
                    "--baseline",
                    str(empty),
                    "--checker",
                    "exception-hygiene",
                    "--fail-on",
                    "warning",
                ]
            )
            == 1
        )
        capsys.readouterr()


class TestJsonReport:
    def test_json_covers_all_five_checkers(self, capsys):
        status = main(["staticcheck", "--json", "--baseline", str(BASELINE)])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert tuple(payload["checkers"]) == CHECKER_NAMES
        assert payload["counts"]["new"] == 0
        assert payload["counts"]["baselined"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) >= {
                "checker",
                "severity",
                "path",
                "line",
                "anchor",
                "message",
                "fingerprint",
            }

    def test_unknown_checker_is_rejected(self):
        with pytest.raises(ValueError):
            run_staticcheck(checkers=("no-such-checker",))


class TestBaselineFile:
    def test_committed_baseline_matches_current_findings(self):
        report = run_staticcheck(baseline_path=BASELINE)
        accepted = load_baseline(BASELINE)
        assert {f.fingerprint for f in report.findings} == set(accepted)
        assert report.new == []

    def test_write_baseline_round_trips(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert (
            main(
                ["staticcheck", "--baseline", str(path), "--write-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["staticcheck", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out
