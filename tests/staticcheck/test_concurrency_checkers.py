"""Self-tests for the whole-program concurrency/resource checkers.

``fixtures/concurrency_bad.py`` plants exactly one violation per
checker; ``fixtures/concurrency_clean.py`` is the repaired twin.  The
call-graph tests pin the reachability semantics the fork-cow checker
rests on, and the live-tree test asserts the real ``src/repro`` is
clean — every historical finding is either fixed or carries a reviewed
``process-local`` annotation, none are baselined.
"""

from pathlib import Path

import pytest

from repro.staticcheck import (
    ANNOTATION,
    CHECKER_NAMES,
    SourceIndex,
    build_call_graph,
    check_async_blocking,
    check_fork_cow,
    check_pickle_boundary,
    check_resource_lifetime,
    concurrency_paths,
    fingerprint_of,
    module_name_for,
    run_staticcheck,
)

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "concurrency_bad.py"
CLEAN = FIXTURES / "concurrency_clean.py"
NEW_CHECKERS = (
    "fork-cow",
    "async-blocking",
    "pickle-boundary",
    "resource-lifetime",
)


@pytest.fixture()
def index():
    return SourceIndex(repo_root=FIXTURES)


class TestCallGraph:
    def test_module_name_mapping(self):
        assert (
            module_name_for(BAD, FIXTURES) == "fixtures.concurrency_bad"
        )
        assert (
            module_name_for(FIXTURES / "__init__.py", FIXTURES) == "fixtures"
        )

    def test_submit_argument_becomes_worker_root(self, index):
        graph = build_call_graph([BAD], index, FIXTURES)
        assert (
            "fixtures.concurrency_bad._worker_main" in graph.discovered_roots()
        )
        assert (
            "fixtures.concurrency_bad._worker_main" in graph.worker_reachable()
        )

    def test_non_executor_submit_is_not_a_root(self, index, tmp_path):
        module = tmp_path / "monitorish.py"
        module.write_text(
            "def _entry(der):\n"
            "    return der\n"
            "def feed(monitor, der):\n"
            "    return monitor.submit(_entry, der)\n",
            encoding="utf-8",
        )
        graph = build_call_graph(
            [module], SourceIndex(repo_root=tmp_path), tmp_path
        )
        assert graph.discovered_roots() == []

    def test_module_scope_dispatch_tables_are_reachable(self, index, tmp_path):
        # The SCOPE_FNS idiom: functions referenced only from a
        # module-level dict must activate once the module is reached.
        module = tmp_path / "tableish.py"
        module.write_text(
            "def _kernel(x):\n"
            "    return x\n"
            "TABLE = {'k': _kernel}\n"
            "def _worker_entry(key, x):\n"
            "    return TABLE[key](x)\n"
            "def launch(executor, x):\n"
            "    return executor.submit(_worker_entry, 'k', x)\n",
            encoding="utf-8",
        )
        graph = build_call_graph(
            [module], SourceIndex(repo_root=tmp_path), tmp_path
        )
        stem = tmp_path.name
        assert f"{stem}.tableish._kernel" in graph.worker_reachable()


class TestPlantedViolations:
    def test_fork_cow_fires_once(self, index):
        findings = check_fork_cow([BAD], index, pkg_root=FIXTURES)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.checker == "fork-cow"
        assert finding.severity == "error"
        assert finding.anchor == "_worker_main"
        assert "_MEMO" in finding.message

    def test_async_blocking_fires_once(self, index):
        findings = check_async_blocking([BAD], index)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.checker == "async-blocking"
        assert finding.severity == "error"
        assert finding.anchor == "collect"
        assert "time.sleep" in finding.message

    def test_pickle_boundary_fires_once(self, index):
        findings = check_pickle_boundary([BAD], index)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.checker == "pickle-boundary"
        assert finding.severity == "error"
        assert finding.anchor == "dispatch_bad"
        assert "lambda" in finding.message

    def test_resource_lifetime_fires_once(self, index):
        findings = check_resource_lifetime([BAD], index)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.checker == "resource-lifetime"
        assert finding.severity == "error"
        assert finding.anchor == "leak_mapping"
        assert "finally" in finding.message


class TestCleanFixture:
    def test_every_concurrency_checker_is_silent(self, index):
        assert check_fork_cow([CLEAN], index, pkg_root=FIXTURES) == []
        assert check_async_blocking([CLEAN], index) == []
        assert check_pickle_boundary([CLEAN], index) == []
        assert check_resource_lifetime([CLEAN], index) == []


class TestAnnotationContract:
    def test_stale_annotation_is_an_error(self, tmp_path):
        module = tmp_path / "stale.py"
        module.write_text(
            f"_UNUSED = {{}}  {ANNOTATION}\n"
            "def helper():\n"
            "    return _UNUSED\n",
            encoding="utf-8",
        )
        findings = check_fork_cow(
            [module], SourceIndex(repo_root=tmp_path), pkg_root=tmp_path
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.severity == "error"
        assert "stale" in finding.message

    def test_annotation_in_docstring_does_not_count(self, tmp_path):
        # Only real comments register — a docstring *describing* the
        # annotation is neither an allow-list entry nor stale.
        module = tmp_path / "describing.py"
        module.write_text(
            f'"""Docs mentioning {ANNOTATION} in prose."""\n'
            "def helper():\n"
            "    return 1\n",
            encoding="utf-8",
        )
        assert (
            check_fork_cow(
                [module], SourceIndex(repo_root=tmp_path), pkg_root=tmp_path
            )
            == []
        )

    def test_write_line_annotation_suppresses(self, tmp_path):
        module = tmp_path / "inline.py"
        module.write_text(
            "_MEMO = {}\n"
            "def _worker_entry(x):\n"
            f"    _MEMO[x] = x  {ANNOTATION}\n"
            "    return _MEMO[x]\n"
            "def launch(executor, x):\n"
            "    return executor.submit(_worker_entry, x)\n",
            encoding="utf-8",
        )
        assert (
            check_fork_cow(
                [module], SourceIndex(repo_root=tmp_path), pkg_root=tmp_path
            )
            == []
        )


class TestFingerprintStability:
    def test_fingerprints_survive_line_drift(self, index, tmp_path):
        drifted = tmp_path / "concurrency_bad.py"
        drifted.write_text(
            "# pad\n# pad\n# pad\n" + BAD.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        drifted_index = SourceIndex(repo_root=tmp_path)
        for checker in (
            lambda paths, idx: check_fork_cow(
                paths, idx, pkg_root=Path(paths[0]).parent
            ),
            check_async_blocking,
            check_pickle_boundary,
            check_resource_lifetime,
        ):
            (original,) = checker([BAD], index)
            (moved,) = checker([drifted], drifted_index)
            assert moved.line == original.line + 3
            assert moved.fingerprint == original.fingerprint

    def test_fingerprint_matches_recomputation(self, index):
        (finding,) = check_async_blocking([BAD], index)
        assert finding.fingerprint == fingerprint_of(
            finding.checker, finding.path, finding.anchor, finding.message
        )


class TestLiveTree:
    def test_new_checkers_are_registered(self):
        for name in NEW_CHECKERS:
            assert name in CHECKER_NAMES

    def test_live_tree_has_zero_unbaselined_findings(self):
        # Every concurrency/resource hazard in src/repro is either
        # fixed or carries a reviewed process-local annotation — the
        # committed baseline holds no entry for these checkers.
        report = run_staticcheck(checkers=NEW_CHECKERS)
        assert report.findings == []

    def test_live_tree_annotations_are_all_live(self):
        # No stale allow-list entries anywhere under src/repro: every
        # annotation suppresses at least one worker-reachable write.
        report = run_staticcheck(checkers=("fork-cow",))
        assert [f for f in report.findings if "stale" in f.message] == []

    def test_concurrency_scope_covers_whole_package(self):
        paths = concurrency_paths()
        names = {p.name for p in paths}
        assert {"parallel.py", "server.py", "batcher.py"} <= names
