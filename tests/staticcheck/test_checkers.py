"""Self-tests for the staticcheck analyzers over planted fixtures.

``fixtures/bad_lints.py`` plants exactly one violation per checker
group; ``fixtures/clean_lints.py`` is the repaired twin.  Each positive
test asserts its checker fires *exactly once* with a stable
fingerprint, and the negative tests assert the clean module is silent.
"""

from pathlib import Path

import pytest

from repro.staticcheck import (
    SourceIndex,
    check_cache_safety,
    check_determinism,
    check_exception_hygiene,
    check_family_soundness,
    check_registered,
    check_registry_invariants,
    fingerprint_of,
)

from .fixtures import bad_lints, clean_lints

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "bad_lints.py"
CLEAN = FIXTURES / "clean_lints.py"


@pytest.fixture()
def index():
    return SourceIndex(repo_root=FIXTURES)


class TestPlantedViolations:
    def test_family_soundness_fires_once(self, index):
        findings = check_family_soundness(
            bad_lints.FIXTURE_REGISTRY.snapshot(), index
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.checker == "family-soundness"
        assert finding.severity == "error"
        assert finding.anchor == "e_fixture_wrong_family"
        assert "san!" in finding.message

    def test_unregistered_lint_fires_once(self, index):
        findings = check_registered(
            [BAD], index, lints=bad_lints.FIXTURE_REGISTRY.snapshot()
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.checker == "registry-invariants"
        assert finding.severity == "error"
        assert "without being passed" in finding.message

    def test_cache_mutation_fires_once(self, index):
        findings = check_cache_safety([BAD], index)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.severity == "error"
        assert finding.anchor == "_mutating_check"
        assert ".append()" in finding.message

    def test_bare_except_fires_once(self, index):
        findings = check_exception_hygiene([BAD], index)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.severity == "error"
        assert finding.anchor == "_sloppy_parse"
        assert "bare except" in finding.message

    def test_random_call_fires_once(self, index):
        findings = check_determinism([BAD], index)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.severity == "error"
        assert finding.anchor == "random"
        assert "nondeterministic" in finding.message

    def test_fixture_metadata_itself_is_clean(self, index):
        # The planted module's *metadata* obeys the runtime invariants,
        # so the five firings above stay one-per-checker.
        assert (
            check_registry_invariants(
                bad_lints.FIXTURE_REGISTRY.snapshot(), index
            )
            == []
        )


class TestCleanFixture:
    def test_every_checker_is_silent(self, index):
        lints = clean_lints.FIXTURE_REGISTRY.snapshot()
        assert check_family_soundness(lints, index) == []
        assert check_registry_invariants(lints, index) == []
        assert check_registered([CLEAN], index, lints=lints) == []
        assert check_cache_safety([CLEAN], index) == []
        assert check_exception_hygiene([CLEAN], index) == []
        assert check_determinism([CLEAN], index) == []


class TestFingerprintStability:
    def test_fingerprint_matches_recomputation(self, index):
        (finding,) = check_exception_hygiene([BAD], index)
        assert finding.fingerprint == fingerprint_of(
            finding.checker, finding.path, finding.anchor, finding.message
        )

    def test_seeded_random_allowance(self, index, tmp_path):
        """The repro.fuzz scope permits random.Random(seed) — only that."""
        module = tmp_path / "fuzzish.py"
        module.write_text(
            "import random\n"
            "def campaign(seed):\n"
            "    rng = random.Random(seed)\n"
            "    kw = random.Random(x=seed)\n"
            "    bad = random.Random()\n"
            "    worse = random.random()\n"
            "    return rng, kw, bad, worse\n",
            encoding="utf-8",
        )
        scoped_index = SourceIndex(repo_root=tmp_path)
        # Strict mode (lint bodies): all four calls are hazards.
        strict = check_determinism([module], scoped_index)
        assert len(strict) == 4
        # Fuzz mode: the two seeded constructors are exempt; the
        # zero-argument constructor and the module-level helper stay.
        relaxed = check_determinism(
            [module], scoped_index, allow_seeded_random=True
        )
        assert len(relaxed) == 2
        assert all("nondeterministic" in f.message for f in relaxed)
        assert sorted(f.line for f in relaxed) == [5, 6]

    def test_seeded_random_allowance_keeps_import_ban(self, index, tmp_path):
        """`from random import Random` stays banned even in fuzz scope."""
        module = tmp_path / "fuzzish_import.py"
        module.write_text("from random import Random\n", encoding="utf-8")
        scoped_index = SourceIndex(repo_root=tmp_path)
        findings = check_determinism(
            [module], scoped_index, allow_seeded_random=True
        )
        assert len(findings) == 1
        assert "hides nondeterministic" in findings[0].message

    def test_fingerprints_survive_line_drift(self, index, tmp_path):
        """Prepending lines moves every lineno but no fingerprint."""
        drifted = tmp_path / "bad_lints.py"
        drifted.write_text(
            "# pad\n# pad\n# pad\n" + BAD.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        drifted_index = SourceIndex(repo_root=tmp_path)

        for checker in (
            check_cache_safety,
            check_exception_hygiene,
            check_determinism,
        ):
            (original,) = checker([BAD], index)
            (moved,) = checker([drifted], drifted_index)
            assert moved.line == original.line + 3
            assert moved.fingerprint == original.fingerprint

    def test_fingerprints_are_deterministic(self):
        assert fingerprint_of("c", "p.py", "f", "m") == fingerprint_of(
            "c", "p.py", "f", "m"
        )
        assert fingerprint_of("c", "p.py", "f", "m") != fingerprint_of(
            "c", "p.py", "f", "other"
        )
