"""Substrate writer/reader: round-trip, corruption taxonomy, edges.

The substrate is the zero-copy transport under every parallel corpus
run, so its failure modes must be *structured*: a truncated or
bit-flipped file raises :class:`CorpusStoreError` with a stable code,
never contributes garbage records to a summary.
"""

import datetime as dt
import os
import struct

import pytest

from repro.corpusstore import (
    CorpusStore,
    CorpusStoreError,
    MAGIC,
    write_store,
)
from repro.corpusstore.format import HEADER, INDEX_ENTRY


PAIRS = [
    (b"\x30\x03\x02\x01\x01", dt.datetime(2024, 3, 1, 12, 30, 45, 123456)),
    (b"", None),
    (b"\xff" * 300, dt.datetime(1969, 12, 31, 23, 59, 59)),
    (b"\x00", dt.datetime(2025, 1, 1)),
]


@pytest.fixture
def store_path(tmp_path):
    return write_store(PAIRS, tmp_path / "corpus.rcs")


class TestRoundTrip:
    def test_count_and_bytes(self, store_path):
        with CorpusStore(store_path, verify=True) as store:
            assert len(store) == len(PAIRS)
            for i, (der, _issued) in enumerate(PAIRS):
                assert store.der_bytes(i) == der

    def test_issued_at_preserved_to_the_microsecond(self, store_path):
        with CorpusStore(store_path) as store:
            for i, (_der, issued) in enumerate(PAIRS):
                assert store.issued_at(i) == issued

    def test_der_view_is_zero_copy(self, store_path):
        with CorpusStore(store_path) as store:
            view = store.der_view(0)
            assert isinstance(view, memoryview)
            assert bytes(view) == PAIRS[0][0]

    def test_iter_shard_matches_per_record_access(self, store_path):
        with CorpusStore(store_path) as store:
            listed = list(store.iter_shard(1, 4))
            assert listed == [
                (store.der_bytes(i), store.issued_at(i)) for i in (1, 2, 3)
            ]

    def test_record_objects_round_trip(self, tmp_path):
        class _Record:
            def __init__(self, certificate, issued_at=None):
                self.certificate = certificate
                self.issued_at = issued_at

        class _Cert:
            def __init__(self, der):
                self._der = der

            def to_der(self):
                return self._der

        records = [_Record(_Cert(b"\x30\x00"), dt.datetime(2024, 6, 1))]
        path = write_store(records, tmp_path / "records.rcs")
        with CorpusStore(path) as store:
            assert store.der_bytes(0) == b"\x30\x00"
            assert store.issued_at(0) == dt.datetime(2024, 6, 1)


class TestEdges:
    def test_empty_corpus(self, tmp_path):
        path = write_store([], tmp_path / "empty.rcs")
        with CorpusStore(path, verify=True) as store:
            assert len(store) == 0
            assert list(store.iter_shard(0, 0)) == []
            with pytest.raises(CorpusStoreError) as excinfo:
                store.der_bytes(0)
            assert excinfo.value.code == "out_of_range"

    def test_single_record_corpus(self, tmp_path):
        path = write_store([(b"\x30\x00", None)], tmp_path / "one.rcs")
        with CorpusStore(path, verify=True) as store:
            assert len(store) == 1
            assert list(store.iter_shard(0, 1)) == [(b"\x30\x00", None)]

    def test_shard_out_of_range(self, store_path):
        with CorpusStore(store_path) as store:
            with pytest.raises(CorpusStoreError) as excinfo:
                list(store.iter_shard(0, len(PAIRS) + 1))
            assert excinfo.value.code == "out_of_range"

    def test_close_is_idempotent(self, store_path):
        store = CorpusStore(store_path)
        store.close()
        store.close()

    def test_atomic_replace_leaves_no_tmp(self, tmp_path):
        path = write_store(PAIRS, tmp_path / "atomic.rcs")
        assert not path.with_name(path.name + ".tmp").exists()


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


class TestLifecycle:
    """Open/close discipline: no leaked fds, structured use-after-close."""

    def test_context_manager_closes(self, store_path):
        with CorpusStore(store_path) as store:
            assert not store.closed
        assert store.closed

    def test_access_after_close_is_structured(self, store_path):
        store = CorpusStore(store_path)
        store.close()
        for access in (
            lambda: store.der_bytes(0),
            lambda: store.der_view(0),
            lambda: store.issued_at(0),
            lambda: list(store.iter_shard(0, 1)),
        ):
            with pytest.raises(CorpusStoreError) as excinfo:
                access()
            assert excinfo.value.code == "closed"

    def test_len_survives_close(self, store_path):
        # Metadata reads stay valid — only mapping access is guarded.
        store = CorpusStore(store_path)
        store.close()
        assert len(store) == len(PAIRS)

    def test_open_failure_does_not_leak_fds(self, store_path):
        # Corrupt the header so open() fails *after* the file and the
        # mapping were acquired; both must be released on the way out.
        data = bytearray(store_path.read_bytes())
        struct.pack_into("<I", data, len(MAGIC), 99)
        store_path.write_bytes(bytes(data))
        before = _open_fds()
        for _ in range(5):
            with pytest.raises(CorpusStoreError):
                CorpusStore(store_path)
        assert _open_fds() == before

    def test_verify_failure_does_not_leak_fds(self, store_path):
        data = bytearray(store_path.read_bytes())
        data[-1] ^= 0xFF
        store_path.write_bytes(bytes(data))
        before = _open_fds()
        for _ in range(5):
            with pytest.raises(CorpusStoreError):
                CorpusStore(store_path, verify=True)
        assert _open_fds() == before

    def test_close_with_live_view_then_release(self, store_path):
        # close() with an exported buffer must not raise; the mapping
        # is reclaimed once the last view is released.
        store = CorpusStore(store_path)
        view = store.der_view(0)
        store.close()
        assert store.closed
        assert bytes(view) == PAIRS[0][0]
        view.release()


class TestCorruption:
    """Every byte-level failure maps to a stable structured code."""

    def test_missing_file_is_unreadable(self, tmp_path):
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(tmp_path / "nope.rcs")
        assert excinfo.value.code == "unreadable"

    def test_not_a_substrate_file(self, tmp_path):
        path = tmp_path / "garbage.rcs"
        path.write_bytes(b"not a substrate" + b"\x00" * HEADER.size)
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(path)
        assert excinfo.value.code == "bad_magic"

    def test_unknown_version_rejected(self, store_path):
        data = bytearray(store_path.read_bytes())
        struct.pack_into("<I", data, len(MAGIC), 99)
        store_path.write_bytes(bytes(data))
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(store_path)
        assert excinfo.value.code == "bad_version"

    def test_truncated_below_header(self, store_path):
        store_path.write_bytes(store_path.read_bytes()[: HEADER.size - 8])
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(store_path)
        assert excinfo.value.code == "truncated"

    def test_truncated_der_region(self, store_path):
        # Header promises more DER bytes than the file holds.
        store_path.write_bytes(store_path.read_bytes()[:-10])
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(store_path)
        assert excinfo.value.code == "truncated"

    def test_flipped_payload_byte_fails_verify(self, store_path):
        data = bytearray(store_path.read_bytes())
        data[-1] ^= 0xFF
        store_path.write_bytes(bytes(data))
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(store_path, verify=True)
        assert excinfo.value.code == "corrupt_data"

    def test_corrupt_index_entry_detected(self, store_path):
        # Point the first index entry past the DER region; both the
        # random-access and shard-iteration paths must reject it.
        data = bytearray(store_path.read_bytes())
        INDEX_ENTRY.pack_into(data, HEADER.size, 2**40, 100)
        store_path.write_bytes(bytes(data))
        with CorpusStore(store_path) as store:
            with pytest.raises(CorpusStoreError) as excinfo:
                store.der_bytes(0)
            assert excinfo.value.code == "corrupt_index"
            with pytest.raises(CorpusStoreError) as excinfo:
                list(store.iter_shard(0, 1))
            assert excinfo.value.code == "corrupt_index"

    def test_inconsistent_region_offsets(self, store_path):
        # index_off pointing before the header end is structurally
        # impossible; the reader must refuse at open time.
        data = bytearray(store_path.read_bytes())
        struct.pack_into("<Q", data, 24, 3)  # index_off field
        store_path.write_bytes(bytes(data))
        with pytest.raises(CorpusStoreError) as excinfo:
            CorpusStore(store_path)
        assert excinfo.value.code == "corrupt_header"

    def test_oversized_der_rejected_at_write(self, tmp_path):
        class _HugeBytes(bytes):
            def __len__(self):
                return 2**33

        class _Cert:
            def to_der(self):
                return _HugeBytes(b"x")

        class _Record:
            certificate = _Cert()
            issued_at = None

        with pytest.raises(CorpusStoreError) as excinfo:
            write_store([_Record()], tmp_path / "huge.rcs")
        assert excinfo.value.code == "corrupt_index"
