"""Substrate ↔ engine integration: zero-copy runs stay byte-identical.

The substrate only earns its place if every dispatch shape — inline
serial, fork pool, spawn pool, explicit ``CorpusStore`` input, spilled
plain records — merges to the byte-identical ``CorpusSummary``.  These
tests pin that, plus the O(1) task-pickle property and structured
failure when a worker meets a poisoned store.
"""

import datetime as dt
import pickle

import pytest

from repro.corpusstore import CorpusStore, write_store
from repro.engine import run_corpus
from repro.lint import summary_to_json
from repro.lint.parallel import (
    LintPool,
    ShardError,
    build_store_shard_tasks,
    lint_shard,
)
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=4007)


class _Record:
    def __init__(self, certificate, issued_at=None):
        self.certificate = certificate
        self.issued_at = issued_at


def make_records(count):
    records = []
    for i in range(count):
        cert = (
            CertificateBuilder()
            .subject_cn(f"store-{i}.example.com")
            .not_before(dt.datetime(2024, 1, 1))
            .add_extension(
                subject_alt_name(GeneralName.dns(f"store-{i}.example.com"))
            )
            .sign(KEY)
        )
        records.append(_Record(cert, dt.datetime(2024, 6, 1 + i % 20)))
    return records


@pytest.fixture(scope="module")
def records():
    return make_records(24)


@pytest.fixture(scope="module")
def reference_json(records):
    return summary_to_json(run_corpus(records, jobs=1).summary)


class TestStoreRuns:
    def test_store_serial_matches_inline(self, records, reference_json, tmp_path):
        path = write_store(records, tmp_path / "c.rcs")
        with CorpusStore(path) as store:
            outcome = run_corpus(store, jobs=1)
        assert summary_to_json(outcome.summary) == reference_json

    def test_store_pool_matches_inline(self, records, reference_json, tmp_path):
        path = write_store(records, tmp_path / "c.rcs")
        with CorpusStore(path) as store:
            outcome = run_corpus(store, jobs=2, shards=4)
        assert summary_to_json(outcome.summary) == reference_json
        assert outcome.shards == 4

    def test_spilled_plain_records_match_inline(self, records, reference_json):
        # Plain records through a pool spill to a temp substrate; the
        # result must not change because the transport did.
        outcome = run_corpus(records, jobs=2, shards=4)
        assert summary_to_json(outcome.summary) == reference_json

    def test_fork_and_spawn_pools_byte_identical(self, records, reference_json):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        with LintPool(2, start_method="fork") as fork_pool:
            forked = run_corpus(records, pool=fork_pool, shards=4)
        with LintPool(2, start_method="spawn") as spawn_pool:
            spawned = run_corpus(records, pool=spawn_pool, shards=4)
        assert summary_to_json(forked.summary) == reference_json
        assert summary_to_json(spawned.summary) == reference_json

    def test_collect_reports_over_store(self, records, tmp_path):
        path = write_store(records, tmp_path / "c.rcs")
        with CorpusStore(path) as store:
            outcome = run_corpus(store, jobs=2, shards=3, collect_reports=True)
        assert outcome.reports is not None
        assert len(outcome.reports) == len(records)


class TestStoreTasks:
    def test_task_pickle_is_constant_size(self, records, tmp_path):
        # The whole point of the substrate: a shard task referencing
        # 10k certificates pickles no larger than one referencing 10.
        path = write_store(records, tmp_path / "c.rcs")
        small = build_store_shard_tasks(path, 2, 1)
        large = build_store_shard_tasks(path, len(records), 1)
        assert len(pickle.dumps(large[0])) == len(pickle.dumps(small[0]))

    def test_shard_boundaries_cover_exactly_once(self, records, tmp_path):
        path = write_store(records, tmp_path / "c.rcs")
        tasks = build_store_shard_tasks(path, len(records), 5)
        spans = sorted((t.start, t.stop) for t in tasks)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(records)
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start

    def test_poisoned_store_yields_structured_shard_error(self, tmp_path):
        # Unparseable DER inside the substrate must surface exactly the
        # way inline garbage does: ShardError, not a hung pool.
        path = write_store(
            [(b"\x30\x03not-der", None)] * 4, tmp_path / "bad.rcs"
        )
        with CorpusStore(path) as store:
            with pytest.raises(ShardError):
                run_corpus(store, jobs=2, shards=2)

    def test_lint_shard_never_raises_on_missing_store(self, tmp_path):
        task = build_store_shard_tasks(tmp_path / "gone.rcs", 4, 1)[0]
        result = lint_shard(task)
        assert result.error is not None
