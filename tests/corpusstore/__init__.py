"""Tests for the memory-mapped corpus substrate (:mod:`repro.corpusstore`)."""
