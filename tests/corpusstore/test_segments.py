"""Append-only segment chains: atomic appends, chained reads across
segment boundaries, gap detection, and the header-only chain digest."""

import datetime as dt

import pytest

from repro.corpusstore import (
    CorpusStoreError,
    SegmentedCorpusStore,
    SegmentWriter,
    list_segments,
    segment_name,
    store_digest,
)

ISSUED = dt.datetime(2020, 6, 1, 12, 0, 0)


def _pairs(start, stop):
    return [
        (bytes([0x30, 4, i & 0xFF, (i >> 8) & 0xFF, 0, 1]), ISSUED + dt.timedelta(days=i))
        for i in range(start, stop)
    ]


@pytest.fixture()
def chain(tmp_path):
    writer = SegmentWriter(tmp_path / "chain")
    for start in range(0, 400, 100):
        writer.append(_pairs(start, start + 100))
    return tmp_path / "chain", writer


class TestWriter:
    def test_segments_are_named_and_ordered(self, chain):
        directory, writer = chain
        assert writer.segments == 4
        assert [p.name for p in list_segments(directory)] == [
            segment_name(n) for n in range(4)
        ]

    def test_writer_resumes_numbering_from_disk(self, chain):
        directory, _ = chain
        writer = SegmentWriter(directory)
        assert writer.segments == 4
        path = writer.append(_pairs(400, 410))
        assert path.name == segment_name(4)

    def test_reset_drops_the_whole_chain(self, chain):
        directory, writer = chain
        (directory / "segment-000002.rcs.tmp").write_bytes(b"partial")
        writer.reset()
        assert writer.segments == 0
        assert list_segments(directory) == []
        assert list(directory.iterdir()) == []


class TestReader:
    def test_chain_reads_as_one_logical_store(self, chain):
        directory, _ = chain
        reference = _pairs(0, 400)
        with SegmentedCorpusStore(directory) as store:
            assert len(store) == 400
            assert store.segments == 4
            for i in (0, 99, 100, 250, 399):
                assert store.der_bytes(i) == reference[i][0]
                assert bytes(store.der_view(i)) == reference[i][0]
                assert store.issued_at(i) == reference[i][1]

    def test_iter_shard_crosses_segment_boundaries(self, chain):
        directory, _ = chain
        reference = _pairs(0, 400)
        with SegmentedCorpusStore(directory) as store:
            assert list(store.iter_shard(50, 250)) == reference[50:250]
            assert list(store.iter_shard(0, 400)) == reference
            assert list(store.iter_shard(100, 100)) == []

    def test_out_of_range_is_structured(self, chain):
        directory, _ = chain
        with SegmentedCorpusStore(directory) as store:
            with pytest.raises(CorpusStoreError) as excinfo:
                store.der_bytes(400)
            assert excinfo.value.code == "out_of_range"
            with pytest.raises(CorpusStoreError) as excinfo:
                list(store.iter_shard(0, 401))
            assert excinfo.value.code == "out_of_range"

    def test_verify_mode_opens_a_healthy_chain(self, chain):
        directory, _ = chain
        with SegmentedCorpusStore(directory, verify=True) as store:
            assert len(store) == 400


class TestGaps:
    def test_missing_middle_segment_is_a_gap(self, chain):
        directory, _ = chain
        (directory / segment_name(1)).unlink()
        with pytest.raises(CorpusStoreError) as excinfo:
            list_segments(directory)
        assert excinfo.value.code == "segment_gap"
        with pytest.raises(CorpusStoreError):
            SegmentedCorpusStore(directory)

    def test_tmp_files_are_invisible_to_the_chain(self, chain):
        directory, _ = chain
        (directory / "segment-000004.rcs.tmp").write_bytes(b"partial append")
        assert len(list_segments(directory)) == 4
        with SegmentedCorpusStore(directory) as store:
            assert len(store) == 400


class TestDigest:
    def test_writer_and_reader_agree(self, chain):
        directory, writer = chain
        with SegmentedCorpusStore(directory) as store:
            assert store.digest() == writer.digest()
        assert store_digest(directory) == writer.digest()

    def test_digest_changes_on_append(self, chain):
        directory, writer = chain
        before = writer.digest()
        writer.append(_pairs(400, 410))
        assert writer.digest() != before

    def test_digest_changes_on_rewritten_segment(self, chain):
        directory, writer = chain
        before = writer.digest()
        from repro.corpusstore import write_store

        write_store(_pairs(500, 600), directory / segment_name(3))
        assert store_digest(directory) != before

    def test_empty_chain_digest_is_a_stable_constant(self, tmp_path):
        assert store_digest(tmp_path / "nowhere") == store_digest(
            tmp_path / "elsewhere"
        )
