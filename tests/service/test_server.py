"""End-to-end daemon tests — the PR's acceptance criteria live here.

A real daemon (``ThreadedService``, ephemeral port, ``--jobs 2``) is
exercised over TCP with the blocking client:

* 64 concurrent ``POST /lint`` over a mixed compliant/noncompliant set,
  every response byte-identical to ``python -m repro lint --json``;
* repeats served from cache (hit counter up, no new worker dispatch);
* a full admission queue answers 429 + ``Retry-After``;
* structured errors, batch endpoint, introspection routes, drain.
"""

import base64
import concurrent.futures
import json
import threading

import pytest

from repro.service import (
    LintServiceClient,
    ServiceConfig,
    ServiceError,
    ThreadedService,
)
from repro.x509.pem import encode_pem

from .conftest import build_cert


class TestLintParity:
    def test_64_concurrent_requests_match_cli_byte_for_byte(
        self, service, mixed_certs, cli_json_for
    ):
        # 16 distinct certs x 4 repeats = 64 concurrent requests.
        payloads = [
            (cert, encode_pem(cert.to_der()).encode("utf-8"))
            for cert in mixed_certs * 4
        ]

        def _one(item):
            cert, pem = item
            status, body = service.client().lint_raw(pem)
            return cert, status, body

        with concurrent.futures.ThreadPoolExecutor(max_workers=64) as pool:
            outcomes = list(pool.map(_one, payloads))

        assert len(outcomes) == 64
        for cert, status, body in outcomes:
            assert status == 200
            assert body == cli_json_for(cert)

    def test_der_and_base64_bodies_hit_the_same_path(
        self, service, mixed_certs, cli_json_for
    ):
        cert = mixed_certs[1]
        client = service.client()
        for body in (
            cert.to_der(),
            base64.b64encode(cert.to_der()),
            encode_pem(cert.to_der()).encode(),
        ):
            status, payload = client.lint_raw(body)
            assert status == 200
            assert payload == cli_json_for(cert)

    def test_report_is_json_with_findings(self, service, mixed_certs):
        bad = next(c for c in mixed_certs if "bad" in c.subject.rfc4514_string())
        report = service.client().lint(bad.to_der())
        assert report["noncompliant"] is True
        assert any(
            f["lint"] == "e_rfc_subject_dn_not_printable_characters"
            for f in report["findings"]
        )


class TestCaching:
    def test_repeat_served_from_cache_without_dispatch(self, service, mixed_certs):
        cert = build_cert("cache-probe.example.com", serial=777)
        client = service.client()
        status, first = client.lint_raw(cert.to_der())
        assert status == 200
        before = client.metrics()

        status, second = client.lint_raw(cert.to_der())
        assert status == 200
        assert second == first

        after = client.metrics()
        assert after["cache"]["hits"] == before["cache"]["hits"] + 1
        # No worker dispatch happened for the cached answer.
        assert (
            after["batcher"]["certs_dispatched"]
            == before["batcher"]["certs_dispatched"]
        )
        assert after["certs_linted"] == before["certs_linted"]

    def test_pem_and_der_share_one_cache_entry(self, service):
        cert = build_cert("alias-probe.example.com", serial=778)
        client = service.client()
        client.lint_raw(cert.to_der())
        before = client.metrics()["cache"]["size"]
        client.lint_raw(encode_pem(cert.to_der()).encode())
        assert client.metrics()["cache"]["size"] == before


class TestErrors:
    def test_garbage_body_is_structured_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client().lint(b"\xff\xfenot a cert")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_body"

    def test_valid_base64_invalid_der_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client().lint(base64.b64encode(b"\x30\x03\x02\x01\x01"))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unparseable_certificate"

    def test_empty_body_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client().lint(b"")
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client()._json("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client()._json("GET", "/lint")
        assert excinfo.value.status == 405

    def test_oversized_body_is_413(self, service, mixed_certs):
        big = ServiceConfig().max_body  # the module fixture keeps defaults
        with pytest.raises(ServiceError) as excinfo:
            service.client().lint(b"A" * (big + 1))
        assert excinfo.value.status == 413


class TestBatchEndpoint:
    def test_batch_mixed_good_and_bad_items(
        self, service, mixed_certs, cli_json_for
    ):
        good = mixed_certs[0]
        payload = json.dumps(
            {
                "certificates": [
                    base64.b64encode(good.to_der()).decode(),
                    "definitely-not-a-certificate",
                ]
            }
        ).encode()
        document = service.client()._json("POST", "/lint/batch", payload)
        assert document["count"] == 2
        report = document["results"][0]["report"]
        assert report == json.loads(cli_json_for(good))
        assert document["results"][1]["error"]["status"] == 400

    def test_batch_rejects_non_list(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.client()._json("POST", "/lint/batch", b'{"certificates": 3}')
        assert excinfo.value.code == "bad_batch"


class TestIntrospection:
    def test_healthz(self, service):
        health = service.client().healthz()
        assert health["status"] == "ok"
        assert health["jobs"] == 2

    def test_rules_route_lists_95(self, service):
        document = service.client().rules()
        assert document["count"] == 95
        sample = document["rules"][0]
        for key in ("rule_id", "lint", "requirement_level", "type", "new"):
            assert key in sample

    def test_metrics_shape(self, service):
        metrics = service.client().metrics()
        for key in (
            "requests_total",
            "responses_by_status",
            "cache",
            "batcher",
            "queue",
            "rejected_total",
            "stages",
        ):
            assert key in metrics
        assert metrics["queue"]["max"] == 256

    def test_metrics_stages_block(self, service):
        # The engine's per-stage collector surfaces through /metrics:
        # after a real lint the worker's decode/lint/sink seconds are
        # folded into the daemon-lifetime stages block.
        cert = build_cert("stages-probe.example.com", serial=779)
        client = service.client()
        status, _body = client.lint_raw(cert.to_der())
        assert status == 200
        stages = client.metrics()["stages"]
        assert stages["certs"] >= 1
        for stage in ("decode", "lint", "sink"):
            # Worker batches merge with worker=True: their CPU seconds
            # and item counts are additive across processes, while the
            # wall column stays parent-side only (zero here).
            assert stages["stages"][stage]["cpu_seconds"] >= 0.0
            assert stages["stages"][stage]["wall_seconds"] == 0.0
            assert stages["stages"][stage]["items"] >= 1
        # A repeat of the same certificate is an engine-level cache hit.
        client.lint_raw(cert.to_der())
        assert client.metrics()["stages"]["cache"]["hits"] >= 1


class _StuckPool:
    """A pool bridge whose futures only resolve when released — lets the
    admission queue fill deterministically."""

    jobs = 1

    def __init__(self):
        self.gate = threading.Event()
        self._futures = []
        self.dispatched = 0

    def submit_json(self, ders, respect_effective_dates=True):
        import concurrent.futures as cf

        self.dispatched += len(ders)
        future: cf.Future = cf.Future()
        self._futures.append((future, len(ders)))

        def _release():
            self.gate.wait(timeout=30)
            future.set_result(["{}"] * len(ders))

        threading.Thread(target=_release, daemon=True).start()
        return future

    def shutdown(self, wait=True):
        self.gate.set()


class TestBackpressure:
    def test_queue_full_yields_429_with_retry_after(self, mixed_certs):
        pool = _StuckPool()
        config = ServiceConfig(
            port=0, max_queue=4, cache_size=0, batch_delay=0.0, max_batch=1
        )
        with ThreadedService(config, pool=pool) as threaded:
            client = threaded.client(timeout=10)
            # Fill the admission queue with requests that cannot finish.
            with concurrent.futures.ThreadPoolExecutor(max_workers=12) as tp:
                futures = [
                    tp.submit(client.lint_raw, cert.to_der())
                    for cert in mixed_certs[:12]
                ]
                rejected = []
                completed = []
                # The stuck pool holds 4 admitted; the rest must bounce
                # with 429 instead of queueing unboundedly.
                for future in concurrent.futures.as_completed(futures, timeout=20):
                    status, body = future.result()
                    (completed if status == 200 else rejected).append(
                        (status, body)
                    )
                    if len(rejected) == 8:
                        pool.gate.set()  # release the admitted four
            assert len(rejected) == 8
            for status, body in rejected:
                assert status == 429
                error = json.loads(body)["error"]
                assert error["code"] == "queue_full"
            metrics = client.metrics()
            assert metrics["rejected_total"] >= 8
        # Retry-After header is present on a raw 429.
        pool2 = _StuckPool()
        config2 = ServiceConfig(
            port=0, max_queue=1, cache_size=0, batch_delay=0.0, max_batch=1
        )
        with ThreadedService(config2, pool=pool2) as threaded:
            client = threaded.client(timeout=10)
            cert_a, cert_b = mixed_certs[0], mixed_certs[1]
            with concurrent.futures.ThreadPoolExecutor(max_workers=1) as tp:
                stuck = tp.submit(client.lint_raw, cert_a.to_der())
                try:
                    # Wait until the first request is admitted.
                    for _ in range(200):
                        if pool2.dispatched:
                            break
                        import time

                        time.sleep(0.01)
                    with pytest.raises(ServiceError) as excinfo:
                        client.lint(cert_b.to_der())
                    assert excinfo.value.status == 429
                    assert excinfo.value.retry_after is not None
                finally:
                    pool2.gate.set()
                    stuck.result(timeout=10)


class TestDrain:
    def test_drain_finishes_admitted_work(self, mixed_certs, cli_json_for):
        config = ServiceConfig(port=0, jobs=2)
        threaded = ThreadedService(config).start()
        client = threaded.client()
        cert = mixed_certs[2]
        status, body = client.lint_raw(cert.to_der())
        assert status == 200
        threaded.stop()
        # Daemon is gone: new connections fail.
        with pytest.raises(OSError):
            LintServiceClient(port=threaded.service.port, timeout=1).healthz()
