"""Unit tests for the micro-batcher (pure asyncio, fake dispatch)."""

import asyncio
import concurrent.futures as cf

import pytest

from repro.service import MicroBatcher


class FakeDispatch:
    """Records batches; resolves each future immediately with markers."""

    def __init__(self, fail: Exception | None = None):
        self.batches: list[tuple[bytes, ...]] = []
        self.fail = fail

    def __call__(self, ders: tuple[bytes, ...]) -> cf.Future:
        self.batches.append(ders)
        future: cf.Future = cf.Future()
        if self.fail is not None:
            future.set_exception(self.fail)
        else:
            future.set_result([f"lint:{der.decode()}" for der in ders])
        return future


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_submits_share_batches(self):
        async def scenario():
            dispatch = FakeDispatch()
            batcher = MicroBatcher(dispatch, max_batch=16, max_delay=0.01)
            batcher.start()
            futures = [batcher.submit(f"c{i}".encode()) for i in range(10)]
            results = await asyncio.gather(*futures)
            await batcher.stop()
            return dispatch, results

        dispatch, results = run(scenario())
        # 10 simultaneous submits coalesce into far fewer dispatches.
        assert len(dispatch.batches) < 10
        assert sum(len(b) for b in dispatch.batches) == 10
        assert results == [f"lint:c{i}" for i in range(10)]

    def test_max_batch_is_respected(self):
        async def scenario():
            dispatch = FakeDispatch()
            batcher = MicroBatcher(dispatch, max_batch=4, max_delay=0.01)
            batcher.start()
            futures = [batcher.submit(f"c{i}".encode()) for i in range(11)]
            await asyncio.gather(*futures)
            await batcher.stop()
            return dispatch

        dispatch = run(scenario())
        assert all(len(batch) <= 4 for batch in dispatch.batches)
        assert max(len(batch) for batch in dispatch.batches) == 4

    def test_results_map_back_in_order(self):
        async def scenario():
            dispatch = FakeDispatch()
            batcher = MicroBatcher(dispatch, max_batch=3, max_delay=0.001)
            batcher.start()
            futures = [batcher.submit(f"x{i}".encode()) for i in range(9)]
            results = await asyncio.gather(*futures)
            await batcher.stop()
            return results

        assert run(scenario()) == [f"lint:x{i}" for i in range(9)]

    def test_lone_request_pays_at_most_max_delay(self):
        async def scenario():
            dispatch = FakeDispatch()
            batcher = MicroBatcher(dispatch, max_batch=16, max_delay=0.005)
            batcher.start()
            start = asyncio.get_running_loop().time()
            await batcher.submit(b"solo")
            elapsed = asyncio.get_running_loop().time() - start
            await batcher.stop()
            return dispatch, elapsed

        dispatch, elapsed = run(scenario())
        assert dispatch.batches == [(b"solo",)]
        assert elapsed < 1.0  # scheduling noise aside, it didn't hang


class TestFailurePropagation:
    def test_dispatch_error_fails_every_future_in_the_batch(self):
        async def scenario():
            dispatch = FakeDispatch(fail=RuntimeError("worker died"))
            batcher = MicroBatcher(dispatch, max_batch=8, max_delay=0.001)
            batcher.start()
            futures = [batcher.submit(f"c{i}".encode()) for i in range(3)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            await batcher.stop()
            return results

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)


class TestLifecycle:
    def test_stop_flushes_queued_work(self):
        async def scenario():
            dispatch = FakeDispatch()
            batcher = MicroBatcher(dispatch, max_batch=4, max_delay=0.05)
            batcher.start()
            futures = [batcher.submit(f"c{i}".encode()) for i in range(6)]
            await batcher.stop()  # drain must resolve everything queued
            return [future.result() for future in futures]

        assert run(scenario()) == [f"lint:c{i}" for i in range(6)]

    def test_submit_after_stop_is_refused(self):
        async def scenario():
            batcher = MicroBatcher(FakeDispatch(), max_batch=2, max_delay=0.001)
            batcher.start()
            await batcher.stop()
            with pytest.raises(RuntimeError):
                batcher.submit(b"late")

        run(scenario())

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            MicroBatcher(FakeDispatch(), max_batch=0)

    def test_stats_shape(self):
        async def scenario():
            dispatch = FakeDispatch()
            batcher = MicroBatcher(dispatch, max_batch=4, max_delay=0.001)
            batcher.start()
            await asyncio.gather(*[batcher.submit(b"a"), batcher.submit(b"b")])
            await batcher.stop()
            return batcher.stats()

        stats = run(scenario())
        assert stats["certs_dispatched"] == 2
        assert stats["batches_dispatched"] >= 1
        assert stats["largest_batch"] <= 4
