"""Shared fixtures: certificate material + a live 2-job daemon."""

import contextlib
import datetime as dt
import io

import pytest

from repro.cli import main as cli_main
from repro.service import ServiceConfig, ThreadedService
from repro.x509 import (
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)
from repro.x509.pem import encode_pem

KEY = generate_keypair(seed=431)
WHEN = dt.datetime(2024, 3, 1)


def build_cert(cn: str, san: str | None = None, serial: int = 1):
    builder = (
        CertificateBuilder()
        .subject_cn(cn)
        .serial(serial)
        .not_before(WHEN)
        .add_extension(subject_alt_name(GeneralName.dns(san or cn)))
    )
    return builder.sign(KEY)


@pytest.fixture(scope="session")
def mixed_certs():
    """16 distinct certs, half compliant, half noncompliant."""
    certs = []
    for i in range(8):
        certs.append(build_cert(f"ok{i}.example.com", serial=i + 1))
        certs.append(
            build_cert(f"bad{i}\x00.example.com", serial=100 + i)
        )
    return certs


@pytest.fixture(scope="session")
def cli_json_for(tmp_path_factory):
    """Oracle: the offline `python -m repro lint --json` stdout bytes."""
    root = tmp_path_factory.mktemp("cli-oracle")
    cache = {}

    def _oracle(cert) -> bytes:
        fp = cert.fingerprint()
        if fp not in cache:
            path = root / f"{fp}.pem"
            path.write_text(encode_pem(cert.to_der()))
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                cli_main(["lint", str(path), "--json"])
            cache[fp] = buffer.getvalue().encode("utf-8")
        return cache[fp]

    return _oracle


@pytest.fixture(scope="module")
def service():
    """A live daemon at --jobs 2 on an ephemeral port."""
    config = ServiceConfig(port=0, jobs=2, cache_size=64, max_queue=256)
    with ThreadedService(config) as threaded:
        yield threaded
