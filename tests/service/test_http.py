"""Unit tests for the minimal HTTP layer and body decoding."""

import asyncio
import base64
import json

import pytest

from repro.service import HttpError, decode_certificate_body
from repro.service.http import (
    error_response,
    json_response,
    read_request,
    render_response,
)

from .conftest import build_cert


def parse(raw: bytes, max_body: int = 1024 * 1024):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(scenario())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/metrics"
        assert request.query == {"verbose": "1"}
        assert request.headers["host"] == "x"

    def test_post_with_body(self):
        request = parse(
            b"POST /lint HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        )
        assert request.method == "POST"
        assert request.body == b"hello"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_raises(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET /x HTTP/1.1\r\n")
        assert excinfo.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            parse(b"NONSENSE\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"A" * 100,
                max_body=10,
            )
        assert excinfo.value.status == 413


class TestResponses:
    def test_render_shape(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: close" in head
        assert body == b'{"ok": true}'

    def test_json_response_sorted_and_newline_terminated(self):
        raw = json_response(200, {"b": 1, "a": 2})
        body = raw.partition(b"\r\n\r\n")[2]
        assert body.endswith(b"\n")
        assert json.loads(body) == {"a": 2, "b": 1}

    def test_error_response_carries_retry_after(self):
        raw = error_response(
            HttpError(429, "queue_full", "full", retry_after=0.25)
        )
        head = raw.partition(b"\r\n\r\n")[0]
        assert b"HTTP/1.1 429" in head
        assert b"Retry-After: 1" in head  # rounded up, never "0"


class TestBodyDecoding:
    def test_pem_der_b64_all_normalize_to_same_der(self):
        cert = build_cert("decode.example.com", serial=4242)
        der = cert.to_der()
        from repro.x509.pem import encode_pem

        pem = encode_pem(der).encode()
        assert decode_certificate_body(der) == der
        assert decode_certificate_body(pem) == der
        assert decode_certificate_body(base64.b64encode(der)) == der
        assert decode_certificate_body(base64.b64encode(pem)) == der

    def test_b64_with_whitespace(self):
        cert = build_cert("ws.example.com", serial=4243)
        der = cert.to_der()
        blob = base64.b64encode(der)
        wrapped = b"\n".join(blob[i : i + 40] for i in range(0, len(blob), 40))
        assert decode_certificate_body(wrapped) == der

    def test_garbage_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            decode_certificate_body(b"\xffgarbage!!")
        assert excinfo.value.status == 400

    def test_empty_raises(self):
        with pytest.raises(HttpError):
            decode_certificate_body(b"   ")
