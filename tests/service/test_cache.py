"""Unit tests for the DER-content-addressed LRU result cache."""

import hashlib

from repro.service import ResultCache, cache_key


class TestCacheKey:
    def test_is_sha256_of_der(self):
        der = b"\x30\x03\x02\x01\x01"
        assert cache_key(der) == hashlib.sha256(der).hexdigest()

    def test_distinct_ders_distinct_keys(self):
        assert cache_key(b"a") != cache_key(b"b")


class TestLruSemantics:
    def test_get_put_roundtrip(self):
        cache = ResultCache(capacity=2)
        cache.put("k1", "body1")
        assert cache.get("k1") == "body1"
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = ResultCache(capacity=2)
        assert cache.get("absent") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refresh a; b is now LRU
        cache.put("c", "C")
        assert "b" not in cache
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.evictions == 1

    def test_overwrite_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "A")
        cache.put("b", "B")
        cache.put("a", "A2")  # refresh by overwrite; b is LRU
        cache.put("c", "C")
        assert "b" not in cache and cache.get("a") == "A2"

    def test_capacity_bound_holds(self):
        cache = ResultCache(capacity=8)
        for i in range(100):
            cache.put(f"k{i}", "v")
        assert len(cache) == 8
        assert cache.evictions == 92

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", "A")
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_hit_rate_and_stats(self):
        cache = ResultCache(capacity=4)
        cache.put("a", "A")
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_hit_rate_empty(self):
        assert ResultCache().hit_rate == 0.0
