"""Shutdown soundness: bounded drain, settled futures, retry backoff.

A SIGTERM must never strand a caller: a wedged worker batch is
force-settled after ``request_timeout``, a cancelled pool bridge still
resolves every request future in the batch, and clients waiting for a
restarting daemon back off with jitter instead of hammering in lockstep.
"""

import asyncio
import concurrent.futures as cf
import random

import pytest

from repro.service import LintServiceClient, RetryPolicy, ServiceConfig
from repro.service.batcher import MicroBatcher
from repro.service.server import HttpError, LintService

from .conftest import build_cert

DER = build_cert("drain.example.com").to_der()


class _WedgedPool:
    """A pool whose futures never resolve (a hung worker process)."""

    jobs = 1

    def __init__(self):
        self.futures: list[cf.Future] = []

    def submit_json(self, ders, **kwargs):
        future: cf.Future = cf.Future()
        self.futures.append(future)
        return future

    def shutdown(self, wait=True):
        pass


class TestBoundedDrain:
    def test_drain_returns_despite_wedged_worker(self):
        async def scenario():
            config = ServiceConfig(
                port=0,
                request_timeout=0.2,
                batch_delay=0.0,
                max_batch=1,
                cache_size=0,
            )
            pool = _WedgedPool()
            service = LintService(config, pool=pool)
            await service.start()
            # Admit one request; the wedged pool never answers, so the
            # caller gets the structured 504 at request_timeout.
            with pytest.raises(HttpError) as excinfo:
                await service._lint_der(DER)
            assert excinfo.value.status == 504
            assert service._bridges  # the batch is still in flight
            # Without bridge force-settling, drain() would await the
            # batcher (which awaits the wedged future) forever.
            await asyncio.wait_for(service.drain(), timeout=5.0)
            assert not service._bridges
            # The wedged inner future was cancelled on the way out.
            assert all(f.cancelled() for f in pool.futures)

        asyncio.run(scenario())

    def test_drain_waits_for_healthy_batches_first(self):
        async def scenario():
            config = ServiceConfig(
                port=0,
                request_timeout=5.0,
                batch_delay=0.0,
                max_batch=1,
                cache_size=0,
            )
            pool = _WedgedPool()
            service = LintService(config, pool=pool)
            await service.start()
            request = asyncio.ensure_future(service._lint_der(DER))
            for _ in range(100):
                if pool.futures:
                    break
                await asyncio.sleep(0.01)
            # The batch completes while drain is waiting on the bridge:
            # the admitted request must still get its real result.
            async def release():
                await asyncio.sleep(0.05)
                pool.futures[0].set_result(["{}"])

            releaser = asyncio.ensure_future(release())
            await asyncio.wait_for(service.drain(), timeout=5.0)
            await releaser
            assert await request == "{}"

        asyncio.run(scenario())


class TestBatcherCancellation:
    def test_cancelled_dispatch_settles_request_futures(self):
        async def scenario():
            dispatched: list[cf.Future] = []

            def dispatch(ders):
                future: cf.Future = cf.Future()
                dispatched.append(future)
                return future

            batcher = MicroBatcher(dispatch, max_batch=1, max_delay=0.0)
            batcher.start()
            request = batcher.submit(b"\x30\x00")
            for _ in range(100):
                if dispatched:
                    break
                await asyncio.sleep(0.01)
            dispatched[0].cancel()
            # The request future settles with a real exception instead
            # of hanging behind a silently-swallowed CancelledError.
            with pytest.raises(RuntimeError, match="aborted"):
                await asyncio.wait_for(request, timeout=5.0)
            await batcher.stop()

        asyncio.run(scenario())


class TestRetryPolicy:
    def test_full_jitter_within_growing_ceiling(self):
        policy = RetryPolicy(base=0.1, cap=2.0, rng=random.Random(7))
        for attempt in range(12):
            ceiling = min(2.0, 0.1 * 2**attempt)
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= ceiling

    def test_delay_sequence_is_deterministic_under_seeded_rng(self):
        first = RetryPolicy(base=0.1, cap=2.0, rng=random.Random(7))
        second = RetryPolicy(base=0.1, cap=2.0, rng=random.Random(7))
        assert [first.delay(i) for i in range(8)] == [
            second.delay(i) for i in range(8)
        ]

    def test_retry_after_is_honoured_and_capped(self):
        policy = RetryPolicy(base=0.1, cap=2.0, rng=random.Random(7))
        assert policy.delay(0, retry_after="0.7") == 0.7
        assert policy.delay(0, retry_after=0.3) == 0.3
        assert policy.delay(0, retry_after="99") == 2.0  # capped
        # Garbage headers fall back to jittered backoff.
        assert 0.0 <= policy.delay(0, retry_after="soon") <= 0.1

    def test_wait_ready_sleeps_the_policy_sequence(self, monkeypatch):
        slept: list[float] = []
        policy = RetryPolicy(
            base=0.1, cap=2.0, rng=random.Random(7), sleep=slept.append
        )
        client = LintServiceClient(port=1)  # nothing listens here
        failures = 5
        calls = {"n": 0}

        def fake_healthz():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise OSError("connection refused")
            return {"status": "ok"}

        monkeypatch.setattr(client, "healthz", fake_healthz)
        assert client.wait_ready(attempts=50, policy=policy) == {"status": "ok"}
        oracle = RetryPolicy(base=0.1, cap=2.0, rng=random.Random(7))
        assert slept == [oracle.delay(i) for i in range(failures)]

    def test_wait_ready_exhaustion_is_timeout(self, monkeypatch):
        policy = RetryPolicy(
            base=0.01, cap=0.02, rng=random.Random(1), sleep=lambda _d: None
        )
        client = LintServiceClient(port=1)
        monkeypatch.setattr(
            client, "healthz", lambda: (_ for _ in ()).throw(OSError("down"))
        )
        with pytest.raises(TimeoutError, match="not ready"):
            client.wait_ready(attempts=3, policy=policy)
