"""Witness corpus tests: DER round-trips, file format, replay."""

import json
import os

import pytest

from repro.asn1 import UniversalTag
from repro.fuzz.mutators import MutantSpec, encode_text
from repro.fuzz.oracle import evaluate
from repro.fuzz.witness import (
    Witness,
    build_witness_der,
    cell_hash,
    extract_spec,
    load_witnesses,
    replay_witness,
    replay_witnesses,
    witness_from_spec,
    write_witness,
)

UTF8 = int(UniversalTag.UTF8_STRING)
BMP = int(UniversalTag.BMP_STRING)
IA5 = int(UniversalTag.IA5_STRING)


def dn(value: bytes, tag: int = UTF8) -> MutantSpec:
    return MutantSpec(context="dn", field="subject:CN", tag=tag, value=value)


def gn(value: bytes, field: str = "san:dns") -> MutantSpec:
    return MutantSpec(context="gn", field=field, tag=IA5, value=value)


class TestDERRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            dn(b"plain"),
            dn(b"high\xffbyte", tag=IA5),
            dn(b"\xc1\xa1"),  # undecodable UTF-8
            dn(encode_text(BMP, "\U0001f600"), tag=BMP),
            dn(b"", tag=BMP),
            gn(b"evil\x01name.com"),
            gn(b"user@\xfftest.com", field="san:rfc822"),
            gn(b""),
        ],
        ids=lambda s: f"{s.context}-{s.tag}-{len(s.value)}",
    )
    def test_octets_survive_build_and_extract(self, spec):
        der = build_witness_der(spec)
        recovered = extract_spec(der, spec.context, spec.field)
        assert recovered.value == spec.value
        if spec.context == "dn":
            assert recovered.tag == spec.tag

    def test_witness_der_is_deterministic(self):
        spec = dn(b"high\xffbyte", tag=IA5)
        assert build_witness_der(spec) == build_witness_der(spec)


class TestWitnessFormat:
    def test_file_round_trip(self, tmp_path):
        spec = dn(b"high\xffbyte", tag=IA5)
        witness = witness_from_spec(spec, evaluate(spec), campaign_seed=7)
        path = write_witness(str(tmp_path), witness)
        assert os.path.basename(path) == witness.filename
        (loaded,) = load_witnesses(str(tmp_path))
        assert loaded == witness

    def test_filename_is_content_addressed(self):
        spec = dn(b"high\xffbyte", tag=IA5)
        observation = evaluate(spec)
        witness = witness_from_spec(spec, observation)
        assert witness.filename == f"cell-{cell_hash(observation)}.json"

    def test_json_is_stable(self, tmp_path):
        # sort_keys + fixed indent + trailing newline: two writes of
        # the same witness are byte-identical (the determinism gate
        # diffs whole directories).
        spec = dn(b"plain")
        witness = witness_from_spec(spec, evaluate(spec))
        first = write_witness(str(tmp_path / "a"), witness)
        second = write_witness(str(tmp_path / "b"), witness)
        assert open(first, "rb").read() == open(second, "rb").read()
        doc = json.load(open(first))
        assert doc["version"] == 1
        assert list(doc) == sorted(doc)


class TestReplay:
    def test_replay_succeeds_for_fresh_witness(self):
        spec = dn(b"high\xffbyte", tag=IA5)
        witness = witness_from_spec(spec, evaluate(spec))
        result = replay_witness(witness)
        assert result.ok, result.problems

    def test_replay_detects_vector_drift(self):
        from dataclasses import replace

        spec = dn(b"high\xffbyte", tag=IA5)
        witness = witness_from_spec(spec, evaluate(spec))
        tampered = replace(witness, vector=("E",) * 9)
        result = replay_witness(tampered)
        assert not result.ok
        assert any("vector" in p or "cell" in p for p in result.problems)

    def test_replay_detects_der_tampering(self):
        spec = dn(b"high\xffbyte", tag=IA5)
        witness = witness_from_spec(spec, evaluate(spec))
        from dataclasses import replace

        swapped = replace(witness, der=build_witness_der(dn(b"other")))
        result = replay_witness(swapped)
        assert not result.ok

    def test_replay_directory(self, tmp_path):
        for value, tag in ((b"high\xffbyte", IA5), (b"\xc1\xa1", UTF8)):
            spec = dn(value, tag=tag)
            write_witness(
                str(tmp_path), witness_from_spec(spec, evaluate(spec))
            )
        results = replay_witnesses(str(tmp_path))
        assert len(results) == 2
        assert all(r.ok for r in results)
