"""Unit tests for the mutation engine: purity, replayability, coverage."""

import random
from dataclasses import replace

import pytest

from repro.asn1 import UniversalTag
from repro.fuzz.mutators import (
    DN_STRING_TAGS,
    MUTATORS,
    MUTATORS_BY_NAME,
    MutantSpec,
    Mutation,
    apply_mutation,
    apply_mutations,
    byte_delete,
    byte_flip,
    byte_insert,
    encode_text,
    sample_mutations,
    truncate,
)

DN_SEED = MutantSpec(
    context="dn",
    field="subject:CN",
    tag=int(UniversalTag.UTF8_STRING),
    value=b"Te-st",
)
GN_SEED = MutantSpec(
    context="gn",
    field="san:dns",
    tag=int(UniversalTag.IA5_STRING),
    value=b"test.com",
)


class TestBytePrimitives:
    def test_byte_flip_wraps_index(self):
        assert byte_flip(b"abc", 0, 0x58) == b"Xbc"
        assert byte_flip(b"abc", 4, 0x58) == b"aXc"
        assert byte_flip(b"", 0, 0x58) == b""

    def test_byte_insert_allows_append(self):
        assert byte_insert(b"ab", 2, 0x58) == b"abX"
        assert byte_insert(b"", 0, 0x58) == b"X"

    def test_byte_delete_wraps_index(self):
        assert byte_delete(b"abc", 1) == b"ac"
        assert byte_delete(b"abc", 4) == b"ac"
        assert byte_delete(b"", 3) == b""

    def test_truncate_keeps_prefix(self):
        assert truncate(b"abcdef", 2) == b"ab"
        assert truncate(b"abcdef", 8) == b"ab"  # modulo length
        assert truncate(b"", 3) == b""


class TestMutatorInventory:
    def test_fixed_operator_order(self):
        # The campaign RNG indexes into this tuple; reordering it would
        # silently re-key every seeded campaign.
        assert [m.name for m in MUTATORS[:2]] == [
            "swap-string-type",
            "reencode-string-type",
        ]
        assert len(MUTATORS) == len(MUTATORS_BY_NAME) == 16

    def test_every_op_covers_a_paper_dimension(self):
        names = set(MUTATORS_BY_NAME)
        for expected in (
            "insert-bmp",
            "insert-astral",
            "insert-control",
            "insert-bidi",
            "insert-invisible",
            "confusable-label",
            "punycode-edge",
            "byte-flip",
            "byte-insert",
            "byte-delete",
            "truncate",
            "overlong-utf8",
            "lone-surrogate",
            "empty-value",
        ):
            assert expected in names


class TestApplication:
    def test_apply_is_pure(self):
        mutation = Mutation(op="byte-flip", params=(1, 0xFF))
        first = apply_mutation(DN_SEED, mutation)
        second = apply_mutation(DN_SEED, mutation)
        assert first == second
        assert first.value == byte_flip(DN_SEED.value, 1, 0xFF)
        assert first.ops == ("byte-flip",)

    def test_apply_records_op_history(self):
        mutations = [
            Mutation(op="byte-flip", params=(0, 0x41)),
            Mutation(op="empty-value", params=()),
        ]
        out = apply_mutations(DN_SEED, mutations)
        assert out.ops == ("byte-flip", "empty-value")
        assert out.value == b""

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            apply_mutation(DN_SEED, Mutation(op="no-such-op"))

    def test_swap_string_type_changes_declared_tag_only(self):
        target = int(UniversalTag.BMP_STRING)
        mutated = apply_mutation(
            DN_SEED, Mutation(op="swap-string-type", params=(target,))
        )
        assert mutated.tag == target
        assert mutated.value == DN_SEED.value  # octets untouched

    def test_reencode_string_type_reencodes_content(self):
        target = int(UniversalTag.BMP_STRING)
        mutated = apply_mutation(
            DN_SEED, Mutation(op="reencode-string-type", params=(target,))
        )
        assert mutated.tag == target
        assert mutated.value == encode_text(target, "Te-st")


class TestSampling:
    def test_equal_seeds_give_equal_mutations(self):
        a = sample_mutations(random.Random(42), DN_SEED, 5)
        b = sample_mutations(random.Random(42), DN_SEED, 5)
        assert a == b

    def test_different_seeds_diverge(self):
        a = sample_mutations(random.Random(1), DN_SEED, 8)
        b = sample_mutations(random.Random(2), DN_SEED, 8)
        assert a != b

    def test_gn_context_never_samples_type_swaps(self):
        # IMPLICIT tagging erases the declared type on the wire, so the
        # swap operators must decline and re-roll in the GN context.
        rng = random.Random(7)
        for _ in range(50):
            for mutation in sample_mutations(rng, GN_SEED, 3):
                assert mutation.op not in (
                    "swap-string-type",
                    "reencode-string-type",
                )

    def test_sampled_params_are_primitives(self):
        # Replayability: params must be JSON-representable primitives.
        rng = random.Random(13)
        for _ in range(100):
            for mutation in sample_mutations(rng, DN_SEED, 2):
                for param in mutation.params:
                    assert isinstance(param, (int, str, bytes))

    def test_dn_tags_cover_table4_types(self):
        assert len(DN_STRING_TAGS) == 5
        assert int(UniversalTag.TELETEX_STRING) in DN_STRING_TAGS
