"""Campaign driver tests: determinism across seeds, jobs, and replays."""

import hashlib
import os

import pytest

from repro.engine import EngineStats
from repro.fuzz import (
    FuzzConfig,
    default_seeds,
    replay_witnesses,
    run_fuzz_campaign,
)


def corpus_digest(directory: str) -> str:
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode("ascii"))
        with open(os.path.join(directory, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


class TestSeedCorpus:
    def test_default_seeds_cover_both_contexts(self):
        seeds = default_seeds()
        assert len(seeds) == 8
        assert sum(1 for s in seeds if s.context == "dn") == 5
        assert sum(1 for s in seeds if s.context == "gn") == 3
        assert len({s.tag for s in seeds if s.context == "dn"}) == 5


class TestDeterminism:
    def test_same_seed_same_result(self, tmp_path):
        config_a = FuzzConfig(
            seed=11, budget=200, batch=50, witness_dir=str(tmp_path / "a")
        )
        config_b = FuzzConfig(
            seed=11, budget=200, batch=50, witness_dir=str(tmp_path / "b")
        )
        result_a = run_fuzz_campaign(config_a)
        result_b = run_fuzz_campaign(config_b)
        assert result_a.novel_cells == result_b.novel_cells
        assert result_a.mutants == result_b.mutants == 200
        assert corpus_digest(str(tmp_path / "a")) == corpus_digest(
            str(tmp_path / "b")
        )

    def test_different_seed_diverges(self, tmp_path):
        result_a = run_fuzz_campaign(FuzzConfig(seed=1, budget=150, batch=50))
        result_b = run_fuzz_campaign(FuzzConfig(seed=2, budget=150, batch=50))
        # Witness sets are minimized specs; two RNG streams exploring
        # the same space rarely produce identical corpora.
        cells_a = {w.cell for w in result_a.witnesses}
        cells_b = {w.cell for w in result_b.witnesses}
        assert cells_a != cells_b

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_produce_byte_identical_corpus(self, tmp_path, jobs):
        # The acceptance criterion: same --seed/--budget give
        # byte-identical witness corpora at --jobs 1 and --jobs N.
        inline = FuzzConfig(
            seed=5, budget=200, batch=50, jobs=1,
            witness_dir=str(tmp_path / "inline"),
        )
        fanned = FuzzConfig(
            seed=5, budget=200, batch=50, jobs=jobs,
            witness_dir=str(tmp_path / f"jobs{jobs}"),
        )
        result_inline = run_fuzz_campaign(inline)
        result_fanned = run_fuzz_campaign(fanned)
        assert result_inline.novel_cells == result_fanned.novel_cells
        assert corpus_digest(str(tmp_path / "inline")) == corpus_digest(
            str(tmp_path / f"jobs{jobs}")
        )


class TestCampaignAccounting:
    def test_budget_is_exact(self):
        result = run_fuzz_campaign(FuzzConfig(seed=3, budget=130, batch=40))
        assert result.mutants == 130

    def test_novelty_requires_unseen_cells(self):
        # Re-running a campaign against the baseline always rediscovers
        # at least the high-yield corruption cells.
        result = run_fuzz_campaign(FuzzConfig(seed=3, budget=200, batch=50))
        assert result.baseline_cells > 0
        assert result.novel_cells > 0
        assert result.novel_disagreements <= result.novel_cells

    def test_max_witnesses_caps_minimization(self, tmp_path):
        config = FuzzConfig(
            seed=3, budget=200, batch=50,
            witness_dir=str(tmp_path), max_witnesses=2,
        )
        result = run_fuzz_campaign(config)
        assert len(result.witnesses) <= 2
        assert len(os.listdir(tmp_path)) <= 2

    def test_stats_record_stages(self):
        stats = EngineStats()
        run_fuzz_campaign(
            FuzzConfig(seed=3, budget=100, batch=50), stats=stats
        )
        assert stats.timings.items.get("mutate") == 100
        assert stats.timings.items.get("evaluate") == 100


class TestWitnessReplayEndToEnd:
    def test_campaign_witnesses_all_replay(self, tmp_path):
        config = FuzzConfig(
            seed=2025, budget=300, batch=100, witness_dir=str(tmp_path)
        )
        result = run_fuzz_campaign(config)
        assert result.witness_paths  # the campaign found something
        replays = replay_witnesses(str(tmp_path))
        assert len(replays) == len(result.witness_paths)
        failures = [r for r in replays if not r.ok]
        assert not failures, [r.problems for r in failures]
