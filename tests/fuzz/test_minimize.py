"""Minimizer contract tests: cell preservation and idempotence."""

import random

import pytest

from repro.asn1 import UniversalTag
from repro.fuzz.minimize import minimize, minimize_spec
from repro.fuzz.mutators import (
    MutantSpec,
    Mutation,
    apply_mutations,
    sample_mutations,
)
from repro.fuzz.oracle import evaluate

UTF8 = int(UniversalTag.UTF8_STRING)
IA5 = int(UniversalTag.IA5_STRING)

DN_SEED = MutantSpec(
    context="dn", field="subject:CN", tag=UTF8, value=b"Te-st"
)
GN_SEED = MutantSpec(
    context="gn", field="san:dns", tag=IA5, value=b"test.com"
)


class TestCellPreservation:
    def test_minimized_reproduces_parent_cell_exactly(self):
        # The acceptance property: every minimized witness reproduces
        # the exact disagreement vector (and fingerprint) of its parent
        # mutant — across a spread of random mutation stacks.
        rng = random.Random(99)
        checked = 0
        for _ in range(40):
            seed = DN_SEED if rng.random() < 0.7 else GN_SEED
            mutations = sample_mutations(rng, seed, 1 + rng.randrange(3))
            parent = evaluate(apply_mutations(seed, mutations))
            minimized, observation = minimize(seed, mutations)
            assert observation.key == parent.key
            assert evaluate(minimized).key == parent.key
            checked += 1
        assert checked == 40

    def test_redundant_mutations_are_dropped(self):
        # Two stacked flips where only the second matters: the first
        # must not survive minimization.
        mutations = [
            Mutation(op="byte-flip", params=(0, ord("T"))),  # no-op flip
            Mutation(op="byte-flip", params=(1, 0xFF)),
        ]
        minimized, _ = minimize(DN_SEED, mutations)
        assert len(minimized.ops) <= 1

    def test_value_is_shrunk(self):
        # A long value whose only interesting byte is the high byte:
        # ddmin should strip (most of) the ASCII padding.
        seed = MutantSpec(
            context="dn",
            field="subject:CN",
            tag=IA5,
            value=b"aaaaaaaaaaaaaaaa\xffaaaaaaaaaaaaaaaa",
        )
        minimized, observation = minimize_spec(seed)
        assert observation.key == evaluate(seed).key
        assert len(minimized.value) < len(seed.value)


class TestIdempotence:
    def test_minimize_spec_is_idempotent(self):
        rng = random.Random(4242)
        for _ in range(25):
            seed = DN_SEED if rng.random() < 0.7 else GN_SEED
            mutations = sample_mutations(rng, seed, 1 + rng.randrange(3))
            once, first = minimize(seed, mutations)
            twice, second = minimize_spec(once)
            assert twice.value == once.value
            assert twice.tag == once.tag
            assert second.key == first.key

    def test_empty_mutation_list_minimizes_seed_itself(self):
        minimized, observation = minimize(DN_SEED, [])
        assert observation.key == evaluate(DN_SEED).key
        # "Te-st" is homogeneous: any single char preserves the
        # all-agree cell, so ddmin shrinks it to one byte.
        assert len(minimized.value) <= len(DN_SEED.value)
