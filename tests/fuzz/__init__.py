"""Tests for the repro.fuzz subsystem (and migrated robustness fuzz)."""
