"""Failure-injection and fuzz tests: malformed inputs must raise typed
errors, never crash with unexpected exceptions.

Mirrors the mutation-based robustness testing of the paper's related
work (SBDT-style ASN.1 tree mutation): byte-level corruption of valid
certificates must leave every public entry point either working or
raising a library exception.  The corruption strategies themselves are
the :mod:`repro.fuzz.mutators` byte primitives — the same operators the
campaign driver applies — so the robustness suite and the campaign
share one corruption vocabulary instead of maintaining two.
"""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.asn1 import ASN1Error, parse
from repro.fuzz.mutators import byte_delete, byte_flip, byte_insert, truncate
from repro.uni import PunycodeError, punycode
from repro.uni.idna import alabel_violations
from repro.x509 import (
    Certificate,
    CertificateBuilder,
    GeneralName,
    generate_keypair,
    subject_alt_name,
)

KEY = generate_keypair(seed=131)


def sample_der() -> bytes:
    return (
        CertificateBuilder()
        .subject_cn("fuzz.example.com")
        .not_before(dt.datetime(2024, 1, 1))
        .add_extension(subject_alt_name(GeneralName.dns("fuzz.example.com")))
        .sign(KEY)
        .to_der()
    )


BASE_DER = sample_der()

#: Exceptions the parse entry points are allowed to raise on garbage.
TYPED_ERRORS = (ASN1Error, OverflowError, ValueError)


def _parse_survives(der: bytes) -> None:
    """Parse must work or fail typed; accessors must not crash either."""
    try:
        cert = Certificate.from_der(der, strict=False)
    except TYPED_ERRORS:
        return
    _ = cert.subject_common_names
    _ = cert.san_dns_names
    _ = cert.dns_names
    _ = cert.is_precertificate


class TestDERFuzz:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_parser(self, data):
        try:
            parse(data, strict=True)
        except ASN1Error:
            pass  # typed failure is the contract

    @given(
        st.integers(min_value=0, max_value=len(BASE_DER) - 1),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=300)
    def test_single_byte_corruption(self, index, value):
        _parse_survives(byte_flip(BASE_DER, index, value))

    @given(
        st.integers(min_value=0, max_value=len(BASE_DER)),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=150)
    def test_byte_insertion(self, index, value):
        _parse_survives(byte_insert(BASE_DER, index, value))

    @given(st.integers(min_value=0, max_value=len(BASE_DER) - 1))
    @settings(max_examples=150)
    def test_byte_deletion(self, index):
        _parse_survives(byte_delete(BASE_DER, index))

    @given(st.integers(min_value=1, max_value=len(BASE_DER) - 1))
    @settings(max_examples=100)
    def test_truncation(self, cut):
        # Any truncation breaks the outer TLV length: typed error only.
        try:
            Certificate.from_der(truncate(BASE_DER, cut), strict=False)
        except TYPED_ERRORS:
            return
        raise AssertionError("truncated parse unexpectedly succeeded")


class TestLintFuzz:
    @given(
        st.integers(min_value=0, max_value=len(BASE_DER) - 1),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=100, deadline=None)
    def test_linting_mutated_certs_never_crashes(self, index, value):
        from repro.lint import run_lints

        try:
            cert = Certificate.from_der(
                byte_flip(BASE_DER, index, value), strict=False
            )
        except TYPED_ERRORS:
            return
        report = run_lints(cert)
        assert report is not None


class TestParserProfileFuzz:
    @given(st.binary(max_size=64), st.sampled_from([12, 19, 20, 22, 26, 18, 28, 30]))
    @settings(max_examples=200)
    def test_profiles_never_crash_on_raw_bytes(self, raw, tag):
        from repro.tlslibs import ALL_PROFILES

        for profile in ALL_PROFILES:
            outcome = profile.decode_dn_attribute(tag, raw)
            assert outcome.ok or outcome.error

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_gn_decoders_never_crash(self, raw):
        from repro.tlslibs import ALL_PROFILES

        for profile in ALL_PROFILES:
            for context in ("san", "crldp"):
                outcome = profile.decode_gn(raw, context=context)
                assert outcome.ok or outcome.error


class TestIDNFuzz:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", max_size=32))
    @settings(max_examples=200)
    def test_alabel_violations_never_crash(self, payload):
        problems = alabel_violations("xn--" + payload)
        assert isinstance(problems, list)

    @given(st.text(max_size=32))
    @settings(max_examples=200)
    def test_ulabel_violations_never_crash(self, label):
        from repro.uni import ulabel_violations

        problems = ulabel_violations(label)
        assert isinstance(problems, list)

    @given(st.text(max_size=40))
    @settings(max_examples=200)
    def test_punycode_encode_total(self, text):
        try:
            encoded = punycode.encode(text)
        except PunycodeError:
            return
        assert punycode.decode(encoded) == text


class TestMonitorFuzz:
    @given(st.text(max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_monitor_queries_never_crash(self, query):
        from repro.ct import ALL_MONITORS

        for monitor in ALL_MONITORS():
            result = monitor.search(query)
            assert result.refused or isinstance(result.matches, list)
