"""Unit tests for the differential oracle and its coverage map."""

import pytest

from repro.asn1 import UniversalTag
from repro.fuzz.mutators import MutantSpec, encode_text
from repro.fuzz.oracle import (
    LIBRARIES,
    CoverageMap,
    Observation,
    baseline_coverage,
    baseline_specs,
    evaluate,
    evaluate_batch,
    evaluate_batch_timed,
    fingerprint_of,
    value_classes,
)

UTF8 = int(UniversalTag.UTF8_STRING)
BMP = int(UniversalTag.BMP_STRING)
IA5 = int(UniversalTag.IA5_STRING)


def dn(value: bytes, tag: int = UTF8) -> MutantSpec:
    return MutantSpec(context="dn", field="subject:CN", tag=tag, value=value)


def gn(value: bytes) -> MutantSpec:
    return MutantSpec(context="gn", field="san:dns", tag=IA5, value=value)


class TestVector:
    def test_nine_columns_in_profile_order(self):
        observation = evaluate(dn(b"plain"))
        assert len(observation.vector) == len(LIBRARIES) == 9
        assert LIBRARIES[0] == "OpenSSL"

    def test_ascii_dn_value_is_all_agrees(self):
        observation = evaluate(dn(b"plain"))
        assert observation.vector == ("A",) * 9

    def test_gn_unsupported_columns(self):
        # OpenSSL and BouncyCastle expose no SAN decoding surface.
        observation = evaluate(gn(b"test.com"))
        unsupported = {
            lib
            for lib, sym in zip(LIBRARIES, observation.vector)
            if sym == "-"
        }
        assert unsupported == {"OpenSSL", "BouncyCastle"}

    def test_partition_letters_group_equal_outputs(self):
        # A latin-1 high byte under IA5String splits the libraries into
        # Latin-1-decoders vs UTF-8-replacers vs rejecters; libraries
        # in the same group must share a letter.
        observation = evaluate(dn(b"high\xffbyte", tag=IA5))
        by_symbol = {}
        for lib, sym in zip(LIBRARIES, observation.vector):
            by_symbol.setdefault(sym, []).append(lib)
        lowercase = [s for s in by_symbol if s.islower()]
        assert lowercase, "expected at least one divergence partition"

    def test_disagreement_flag(self):
        assert not evaluate(dn(b"plain")).disagreement
        assert evaluate(dn(b"high\xffbyte", tag=IA5)).disagreement

    def test_unsupported_only_is_not_disagreement(self):
        observation = Observation(
            fingerprint=("dn", "X", ()), vector=("-",) * 8 + ("E",)
        )
        assert not observation.disagreement


class TestFingerprint:
    def test_classes_for_plain_ascii_empty(self):
        assert value_classes(dn(b"plain")) == ()

    def test_classes_for_empty_value(self):
        assert value_classes(dn(b"")) == ("empty",)

    def test_classes_for_astral_utf8(self):
        value = encode_text(UTF8, "\U0001f600")
        assert "astral" in value_classes(dn(value, tag=UTF8))

    def test_astral_in_bmpstring_is_undecodable(self):
        # BMPString's standard decode is strict UCS-2: a surrogate pair
        # is a decode error, not an astral character (Table 4's
        # over-tolerance rows come from the *profiles*, not the
        # reference).
        value = encode_text(BMP, "\U0001f600")
        classes = value_classes(dn(value, tag=BMP))
        assert "undecodable" in classes

    def test_classes_for_undecodable(self):
        classes = value_classes(dn(b"\xc1\xa1"))  # overlong UTF-8
        assert "undecodable" in classes
        assert "high-byte" in classes

    def test_classes_for_invalid_punycode(self):
        classes = value_classes(dn(b"xn--0.com", tag=IA5))
        assert "xn-label" in classes
        assert "xn-invalid" in classes

    def test_fingerprint_ignores_mutation_history(self):
        spec = dn(b"plain")
        with_ops = MutantSpec(
            context="dn",
            field="subject:CN",
            tag=UTF8,
            value=b"plain",
            ops=("byte-flip",),
        )
        assert fingerprint_of(spec) == fingerprint_of(with_ops)


class TestCoverageMap:
    def test_observe_reports_novelty_once(self):
        coverage = CoverageMap()
        observation = evaluate(dn(b"plain"))
        assert coverage.observe(observation) is True
        assert coverage.observe(observation) is False
        assert len(coverage) == 1

    def test_disagreement_cells_counted(self):
        coverage = CoverageMap()
        coverage.observe(evaluate(dn(b"plain")))
        coverage.observe(evaluate(dn(b"high\xffbyte", tag=IA5)))
        assert coverage.disagreement_cells == 1

    def test_baseline_contains_tables_4_and_5(self):
        specs = baseline_specs()
        contexts = {spec.context for spec in specs}
        assert contexts == {"dn", "gn"}
        assert any(spec.value == b"evil\x01name.com" for spec in specs)
        coverage = baseline_coverage()
        assert len(coverage) > 0

    def test_baseline_marks_known_cells_as_seen(self):
        coverage = baseline_coverage()
        for spec in baseline_specs():
            assert coverage.observe(evaluate(spec)) is False


class TestBatch:
    def test_batch_preserves_order(self):
        specs = [dn(b"plain"), gn(b"test.com"), dn(b"")]
        observations = evaluate_batch(specs)
        assert observations == [evaluate(spec) for spec in specs]

    def test_timed_batch_matches_and_accounts(self):
        specs = [dn(b"plain"), dn(b"high\xffbyte", tag=IA5)]
        observations, timings = evaluate_batch_timed(specs)
        assert observations == evaluate_batch(specs)
        assert timings.items.get("evaluate") == 2
        assert timings.wall.get("evaluate", 0.0) >= 0.0
